#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::sim {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 10'000'000;

std::vector<gmf::Flow> lone_voip(const net::StarNetwork& star) {
  return {workload::make_voip_flow(
      "v", net::Route({star.hosts[0], star.sw, star.hosts[1]}))};
}

TEST(Simulator, DeliversEveryPacketOfALoneFlow) {
  const auto star = net::make_star_network(4, kSpeed);
  SimOptions opts;
  opts.horizon = Time::ms(200);  // 10 packets at 20 ms
  Simulator sim(star.net, lone_voip(star), opts);
  sim.run();
  const FlowSimStats& st = sim.stats(net::FlowId(0));
  EXPECT_EQ(st.packets_completed, 11u);  // t=0..200 inclusive
  EXPECT_EQ(st.packets_incomplete, 0u);
  EXPECT_EQ(st.total_misses(), 0u);
  EXPECT_GT(st.worst_response(), Time::zero());
}

TEST(Simulator, ResponseAtLeastTransmissionAndProcessing) {
  const auto star = net::make_star_network(4, kSpeed);
  SimOptions opts;
  opts.horizon = Time::ms(100);
  Simulator sim(star.net, lone_voip(star), opts);
  sim.run();
  // Lower bound: two wire traversals of the ~1936-bit voice frame plus the
  // two switch tasks: > 2 * 0.19 ms.
  EXPECT_GE(sim.stats(net::FlowId(0)).worst_response(), Time::us(380));
}

TEST(Simulator, RunTwiceThrows) {
  const auto star = net::make_star_network(4, kSpeed);
  SimOptions opts;
  opts.horizon = Time::ms(20);
  Simulator sim(star.net, lone_voip(star), opts);
  sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulator, DeterministicForSeed) {
  const auto s = workload::make_figure2_scenario(kSpeed, true);
  SimOptions opts;
  opts.horizon = Time::ms(500);
  opts.source.model = ArrivalModel::kUniformSlack;
  opts.seed = 77;
  Simulator a(s.network, s.flows, opts);
  Simulator b(s.network, s.flows, opts);
  a.run();
  b.run();
  for (std::size_t f = 0; f < s.flows.size(); ++f) {
    const net::FlowId id(static_cast<std::int32_t>(f));
    EXPECT_EQ(a.stats(id).worst_response(), b.stats(id).worst_response());
    EXPECT_EQ(a.stats(id).packets_completed, b.stats(id).packets_completed);
  }
}

TEST(Simulator, DifferentSeedsDifferUnderRandomArrivals) {
  const auto s = workload::make_figure2_scenario(kSpeed, true);
  SimOptions opts;
  opts.horizon = Time::ms(500);
  opts.source.model = ArrivalModel::kUniformSlack;
  opts.seed = 1;
  Simulator a(s.network, s.flows, opts);
  opts.seed = 2;
  Simulator b(s.network, s.flows, opts);
  a.run();
  b.run();
  bool any_diff = false;
  for (std::size_t f = 0; f < s.flows.size(); ++f) {
    const net::FlowId id(static_cast<std::int32_t>(f));
    any_diff |=
        a.stats(id).worst_response() != b.stats(id).worst_response();
  }
  EXPECT_TRUE(any_diff);
}

TEST(Simulator, MultiFragmentPacketsCompleteAtomically) {
  const auto star = net::make_star_network(4, kSpeed);
  // 4000-byte packets -> 3 Ethernet frames each.
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "big", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(50), gmfnet::Time::ms(50), 4000 * 8)};
  SimOptions opts;
  opts.horizon = Time::ms(200);
  Simulator sim(star.net, flows, opts);
  sim.run();
  const FlowSimStats& st = sim.stats(net::FlowId(0));
  EXPECT_EQ(st.packets_completed, 5u);
  // The response must cover the whole datagram's wire time on the first
  // link (~3.35 ms) plus at least the last fragment on the second link;
  // the switch pipelines fragments across links, so less than the naive
  // 2x full serialization.
  EXPECT_GE(st.worst_response(), Time::ms(4));
  EXPECT_LE(st.worst_response(), Time::ms(8));
}

TEST(Simulator, MpegFlowStatsPerFrameKind) {
  const auto s = workload::make_figure2_scenario(kSpeed, false);
  SimOptions opts;
  opts.horizon = Time::ms(540);  // two GMF cycles
  Simulator sim(s.network, s.flows, opts);
  sim.run();
  const FlowSimStats& st = sim.stats(net::FlowId(0));
  ASSERT_EQ(st.per_kind.size(), 9u);
  // Every frame kind was observed at least twice.
  for (std::size_t k = 0; k < 9; ++k) {
    EXPECT_GE(st.per_kind[k].count(), 2u) << "kind " << k;
  }
  // The I+P frame kind has the largest observed response.
  EXPECT_EQ(st.worst_response(), st.max_response[0]);
}

TEST(Simulator, GeneralizedJitterSpreadsFragments) {
  const auto star = net::make_star_network(4, kSpeed);
  std::vector<gmf::Flow> with_jitter = {gmf::make_sporadic_flow(
      "j", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(50), gmfnet::Time::ms(50), 4000 * 8, 0,
      /*jitter=*/gmfnet::Time::ms(5))};
  std::vector<gmf::Flow> without = {gmf::make_sporadic_flow(
      "q", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(50), gmfnet::Time::ms(50), 4000 * 8)};
  SimOptions opts;
  opts.horizon = Time::ms(400);
  opts.seed = 5;
  Simulator sj(star.net, with_jitter, opts);
  Simulator sq(star.net, without, opts);
  sj.run();
  sq.run();
  // Scattered releases delay the completion of the last fragment.
  EXPECT_GT(sj.stats(net::FlowId(0)).worst_response(),
            sq.stats(net::FlowId(0)).worst_response());
}

TEST(Simulator, TraceRecordsJourney) {
  const auto star = net::make_star_network(4, kSpeed);
  SimTrace trace;
  trace.enable();
  SimOptions opts;
  opts.horizon = Time::ms(25);  // two packets
  opts.trace = &trace;
  Simulator sim(star.net, lone_voip(star), opts);
  sim.run();
  ASSERT_FALSE(trace.records().empty());
  int arrivals = 0, deliveries = 0, frame_events = 0;
  for (const TraceRecord& r : trace.records()) {
    if (r.event == TraceEvent::kPacketArrival) ++arrivals;
    if (r.event == TraceEvent::kPacketDelivered) ++deliveries;
    if (r.event == TraceEvent::kFrameDelivered) ++frame_events;
  }
  EXPECT_EQ(arrivals, 2);
  EXPECT_EQ(deliveries, 2);
  // Each packet's single frame is delivered twice (switch, then host).
  EXPECT_EQ(frame_events, 4);
  EXPECT_FALSE(trace.render().empty());
}

TEST(Simulator, CrossTrafficRaisesObservedWorstCase) {
  const auto quiet = workload::make_figure2_scenario(kSpeed, false);
  const auto busy = workload::make_figure2_scenario(kSpeed, true);
  SimOptions opts;
  opts.horizon = Time::sec(2);
  Simulator sq(quiet.network, quiet.flows, opts);
  Simulator sb(busy.network, busy.flows, opts);
  sq.run();
  sb.run();
  EXPECT_GE(sb.stats(net::FlowId(0)).worst_response(),
            sq.stats(net::FlowId(0)).worst_response());
}

}  // namespace
}  // namespace gmfnet::sim
