#include "switchsim/stride.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace gmfnet::switchsim {
namespace {

TEST(Stride, AddTaskInitializesPassToStride) {
  StrideScheduler s;
  const std::size_t t = s.add_task(2, "a");
  EXPECT_EQ(s.tickets(t), 2);
  EXPECT_EQ(s.pass(t), StrideScheduler::kStride1 / 2);
  EXPECT_EQ(s.name(t), "a");
}

TEST(Stride, RejectsNonPositiveTickets) {
  StrideScheduler s;
  EXPECT_THROW(s.add_task(0), std::invalid_argument);
  EXPECT_THROW(s.add_task(-3), std::invalid_argument);
}

TEST(Stride, EqualTicketsIsRoundRobin) {
  // "Stride scheduling can be configured such that each task has ticket=1;
  // this causes stride scheduling to collapse to round-robin" (§2.2).
  StrideScheduler s;
  for (int i = 0; i < 4; ++i) s.add_task(1);
  std::vector<std::size_t> order;
  for (int i = 0; i < 12; ++i) order.push_back(s.dispatch());
  const std::vector<std::size_t> expect = {0, 1, 2, 3, 0, 1, 2, 3,
                                           0, 1, 2, 3};
  EXPECT_EQ(order, expect);
}

TEST(Stride, TwoToOneTicketRatio) {
  // "a task with ticket=2 will execute twice as frequently as a task with
  // ticket=1" (§2.2).
  StrideScheduler s;
  const std::size_t heavy = s.add_task(2);
  const std::size_t light = s.add_task(1);
  std::map<std::size_t, int> count;
  for (int i = 0; i < 300; ++i) ++count[s.dispatch()];
  EXPECT_EQ(count[heavy], 200);
  EXPECT_EQ(count[light], 100);
}

TEST(Stride, ProportionalShareThreeWay) {
  StrideScheduler s;
  const std::size_t a = s.add_task(3);
  const std::size_t b = s.add_task(2);
  const std::size_t c = s.add_task(1);
  std::map<std::size_t, int> count;
  for (int i = 0; i < 600; ++i) ++count[s.dispatch()];
  EXPECT_EQ(count[a], 300);
  EXPECT_EQ(count[b], 200);
  EXPECT_EQ(count[c], 100);
}

TEST(Stride, SingleTaskAlwaysRuns) {
  StrideScheduler s;
  s.add_task(1);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(s.dispatch(), 0u);
}

TEST(Stride, ResetRestoresBootState) {
  StrideScheduler s;
  s.add_task(1);
  s.add_task(1);
  std::vector<std::size_t> first;
  for (int i = 0; i < 6; ++i) first.push_back(s.dispatch());
  s.reset();
  std::vector<std::size_t> second;
  for (int i = 0; i < 6; ++i) second.push_back(s.dispatch());
  EXPECT_EQ(first, second);
}

TEST(Stride, RoundRobinServiceGapBound) {
  // Under equal tickets, between two services of any task every other task
  // runs exactly once: the gap is exactly task_count dispatches.
  StrideScheduler s;
  const int n = 6;
  for (int i = 0; i < n; ++i) s.add_task(1);
  std::map<std::size_t, int> last;
  for (int step = 0; step < 10 * n; ++step) {
    const std::size_t t = s.dispatch();
    if (last.contains(t)) {
      EXPECT_EQ(step - last[t], n);
    }
    last[t] = step;
  }
}

}  // namespace
}  // namespace gmfnet::switchsim
