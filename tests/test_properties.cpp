// Cross-module invariants, checked over randomized inputs with
// parameterized sweeps.
#include <gtest/gtest.h>

#include "baseline/sporadic.hpp"
#include "baseline/utilization.hpp"
#include "core/holistic.hpp"
#include "core/priority.hpp"
#include "net/topology.hpp"
#include "workload/scenario.hpp"
#include "workload/taskset_gen.hpp"

namespace gmfnet {
namespace {

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  workload::GeneratedTaskset make(const net::Network& net,
                                  const std::vector<net::NodeId>& hosts,
                                  double util, int flows) {
    Rng rng(GetParam());
    workload::TasksetParams params;
    params.num_flows = flows;
    params.total_utilization = util;
    params.deadline_factor_lo = 2.0;
    params.deadline_factor_hi = 4.0;
    auto ts = workload::generate_taskset(net, hosts, params, rng);
    EXPECT_TRUE(ts.has_value());
    return *ts;
  }
};

TEST_P(PropertySweep, HolisticBoundsDominateSingleSweep) {
  // Jitter feedback can only increase the bound: the holistic fixed point
  // dominates a single Figure-6 pass from the initial jitter map.
  const auto star = net::make_star_network(6, 100'000'000);
  auto ts = make(star.net, star.hosts, 0.3, 5);
  core::AnalysisContext ctx(star.net, ts.flows);

  core::JitterMap jm = core::JitterMap::initial(ctx);
  std::vector<core::FlowResult> single;
  for (std::size_t f = 0; f < ts.flows.size(); ++f) {
    single.push_back(core::analyze_flow_end_to_end(
        ctx, jm, core::FlowId(static_cast<std::int32_t>(f))));
  }
  const auto holistic = core::analyze_holistic(ctx);
  if (!holistic.converged) GTEST_SKIP() << "diverged at this utilization";
  for (std::size_t f = 0; f < ts.flows.size(); ++f) {
    ASSERT_TRUE(single[f].all_converged());
    for (std::size_t k = 0; k < ts.flows[f].frame_count(); ++k) {
      EXPECT_GE(holistic.flows[f].frames[k].response,
                single[f].frames[k].response)
          << "flow " << f << " frame " << k;
    }
  }
}

TEST_P(PropertySweep, SporadicBaselineDominatesGmf) {
  // Soundness of the comparison in E5: whenever both converge, the
  // sporadic-collapsed bound is >= the GMF bound for every flow.
  const auto star = net::make_star_network(6, 100'000'000);
  auto ts = make(star.net, star.hosts, 0.25, 5);
  core::AnalysisContext ctx(star.net, ts.flows);
  const auto gmf_res = core::analyze_holistic(ctx);
  const auto spor_res =
      baseline::analyze_sporadic_baseline(star.net, ts.flows);
  if (!gmf_res.converged || !spor_res.converged) {
    GTEST_SKIP() << "divergence at this seed";
  }
  for (std::size_t f = 0; f < ts.flows.size(); ++f) {
    const auto id = core::FlowId(static_cast<std::int32_t>(f));
    EXPECT_GE(spor_res.worst_response(id), gmf_res.worst_response(id))
        << ts.flows[f].name();
  }
}

TEST_P(PropertySweep, ScheduleImpliesUtilizationTest) {
  // The utilization test is necessary: anything the holistic analysis
  // accepts also passes utilization < 1 on every resource.
  const auto star = net::make_star_network(6, 100'000'000);
  auto ts = make(star.net, star.hosts, 0.4, 6);
  core::AnalysisContext ctx(star.net, ts.flows);
  const auto res = core::analyze_holistic(ctx);
  if (res.schedulable) {
    EXPECT_TRUE(baseline::utilization_test(star.net, ts.flows));
  }
}

TEST_P(PropertySweep, PriorityRaiseNeverHurtsAFlow) {
  // With everything else fixed, raising one flow's priority to the top can
  // only shrink (or keep) that flow's own egress bound.
  const auto star = net::make_star_network(6, 100'000'000);
  auto ts = make(star.net, star.hosts, 0.35, 5);
  core::assign_priorities(ts.flows, core::PriorityScheme::kDeadlineMonotonic);

  core::AnalysisContext base_ctx(star.net, ts.flows);
  const auto base = core::analyze_holistic(base_ctx);

  auto boosted = ts.flows;
  boosted[0].set_priority(1'000'000);
  core::AnalysisContext boost_ctx(star.net, boosted);
  const auto boost = core::analyze_holistic(boost_ctx);

  if (!base.converged || !boost.converged) GTEST_SKIP();
  EXPECT_LE(boost.worst_response(core::FlowId(0)),
            base.worst_response(core::FlowId(0)));
}

TEST_P(PropertySweep, AddingAFlowNeverShrinksBounds) {
  const auto star = net::make_star_network(6, 100'000'000);
  auto ts = make(star.net, star.hosts, 0.3, 4);
  core::AnalysisContext small_ctx(star.net, ts.flows);
  const auto small = core::analyze_holistic(small_ctx);

  auto bigger = ts.flows;
  bigger.push_back(workload::make_voip_flow(
      "extra", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(20), /*priority=*/50));
  core::AnalysisContext big_ctx(star.net, bigger);
  const auto big = core::analyze_holistic(big_ctx);

  if (!small.converged || !big.converged) GTEST_SKIP();
  for (std::size_t f = 0; f < ts.flows.size(); ++f) {
    const auto id = core::FlowId(static_cast<std::int32_t>(f));
    EXPECT_GE(big.worst_response(id), small.worst_response(id));
  }
}

TEST_P(PropertySweep, FasterLinksNeverHurt) {
  // Same flows, 10x the link speed: every bound shrinks or stays.
  auto slow_star = net::make_star_network(6, 100'000'000);
  auto fast_star = net::make_star_network(6, 1'000'000'000);
  auto ts = make(slow_star.net, slow_star.hosts, 0.3, 5);

  core::AnalysisContext slow_ctx(slow_star.net, ts.flows);
  core::AnalysisContext fast_ctx(fast_star.net, ts.flows);
  const auto slow = core::analyze_holistic(slow_ctx);
  const auto fast = core::analyze_holistic(fast_ctx);
  if (!slow.converged || !fast.converged) GTEST_SKIP();
  for (std::size_t f = 0; f < ts.flows.size(); ++f) {
    const auto id = core::FlowId(static_cast<std::int32_t>(f));
    EXPECT_LE(fast.worst_response(id), slow.worst_response(id));
  }
}

TEST_P(PropertySweep, PaperLiteralVariantNeverExceedsSoundVariant) {
  // Ablation coherence (E10): the paper-literal recurrences omit self-CIRC
  // terms, so their bounds are <= the sound default everywhere.
  const auto star = net::make_star_network(6, 100'000'000);
  auto ts = make(star.net, star.hosts, 0.3, 5);
  core::AnalysisContext ctx(star.net, ts.flows);
  core::HolisticOptions sound;
  core::HolisticOptions literal;
  literal.hop.charge_self_circ = false;
  const auto rs = core::analyze_holistic(ctx, sound);
  const auto rl = core::analyze_holistic(ctx, literal);
  if (!rs.converged || !rl.converged) GTEST_SKIP();
  for (std::size_t f = 0; f < ts.flows.size(); ++f) {
    const auto id = core::FlowId(static_cast<std::int32_t>(f));
    EXPECT_LE(rl.worst_response(id), rs.worst_response(id));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u));

TEST(Properties, DoublingSpeedHalvesLoneFlowWireTerms) {
  // Closed-form scaling check on the full pipeline of a lone flow: all
  // MFT/C terms scale 1/speed, CIRC terms stay.
  auto mk = [](ethernet::LinkSpeedBps speed) {
    const auto star = net::make_star_network(4, speed);
    std::vector<gmf::Flow> flows = {workload::make_voip_flow(
        "v", net::Route({star.hosts[0], star.sw, star.hosts[1]}))};
    core::AnalysisContext ctx(star.net, flows);
    return core::analyze_holistic(ctx).worst_response(core::FlowId(0));
  };
  const auto r10 = mk(10'000'000);
  const auto r20 = mk(20'000'000);
  // CIRC terms: ingress CIRC + egress CIRC at a 4-interface switch, plus
  // the source jitter which does not scale either.
  const gmfnet::Time circ = gmfnet::Time::us_f(14.8);
  const gmfnet::Time fixed = 2 * circ + gmfnet::Time::us(500);
  EXPECT_EQ((r10 - fixed).ps(), 2 * (r20 - fixed).ps());
}

}  // namespace
}  // namespace gmfnet
