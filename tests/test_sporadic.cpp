#include "baseline/sporadic.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::baseline {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 10'000'000;

TEST(Sporadic, CollapseTakesWorstOfEachDimension) {
  const auto star = net::make_star_network(4, kSpeed);
  std::vector<gmf::FrameSpec> fr(3);
  fr[0] = {gmfnet::Time::ms(30), gmfnet::Time::ms(100), gmfnet::Time::ms(1),
           12'000 * 8};
  fr[1] = {gmfnet::Time::ms(10), gmfnet::Time::ms(60), gmfnet::Time::ms(3),
           1'000 * 8};
  fr[2] = {gmfnet::Time::ms(20), gmfnet::Time::ms(80), gmfnet::Time::zero(),
           4'000 * 8};
  const gmf::Flow flow("g",
                       net::Route({star.hosts[0], star.sw, star.hosts[1]}),
                       fr, 5, true);
  const gmf::Flow s = collapse_to_sporadic(flow);
  ASSERT_EQ(s.frame_count(), 1u);
  EXPECT_EQ(s.frame(0).min_separation, gmfnet::Time::ms(10));  // min T
  EXPECT_EQ(s.frame(0).deadline, gmfnet::Time::ms(60));        // min D
  EXPECT_EQ(s.frame(0).jitter, gmfnet::Time::ms(3));           // max GJ
  EXPECT_EQ(s.frame(0).payload_bits, 12'000 * 8);              // max S
  EXPECT_EQ(s.priority(), 5);
  EXPECT_TRUE(s.rtp());
  EXPECT_EQ(s.route(), flow.route());
}

TEST(Sporadic, CollapseOfSporadicIsIdentityShape) {
  const auto star = net::make_star_network(4, kSpeed);
  const gmf::Flow s = gmf::make_sporadic_flow(
      "s", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(20), gmfnet::Time::ms(15), 1600, 2,
      gmfnet::Time::us(100), false);
  const gmf::Flow c = collapse_to_sporadic(s);
  EXPECT_EQ(c.frame(0).min_separation, s.frame(0).min_separation);
  EXPECT_EQ(c.frame(0).deadline, s.frame(0).deadline);
  EXPECT_EQ(c.frame(0).jitter, s.frame(0).jitter);
  EXPECT_EQ(c.frame(0).payload_bits, s.frame(0).payload_bits);
}

TEST(Sporadic, CollapsedSetSameSize) {
  const auto sc = workload::make_figure2_scenario(kSpeed, true);
  const auto collapsed = collapse_to_sporadic(sc.flows);
  EXPECT_EQ(collapsed.size(), sc.flows.size());
  for (const auto& f : collapsed) EXPECT_EQ(f.frame_count(), 1u);
}

TEST(Sporadic, BaselineIsMorePessimisticThanGmf) {
  // The paper's motivation: GMF captures the I/B/P size variation, the
  // sporadic collapse must assume every packet is an I-frame at the
  // B-frame rate.  Utilization explodes and the bound (if any) dominates.
  const auto sc = workload::make_figure2_scenario(kSpeed, false);
  core::AnalysisContext gmf_ctx(sc.network, sc.flows);
  const auto gmf_res = core::analyze_holistic(gmf_ctx);
  ASSERT_TRUE(gmf_res.converged);

  const auto spor_res = analyze_sporadic_baseline(sc.network, sc.flows);
  if (spor_res.converged) {
    EXPECT_GE(spor_res.worst_response(core::FlowId(0)),
              gmf_res.worst_response(core::FlowId(0)));
  } else {
    // Divergence of the baseline is itself the expected pessimism.
    SUCCEED();
  }
}

TEST(Sporadic, BaselineSoundOnSporadicInputs) {
  // For genuinely sporadic flows the two analyses coincide.
  const auto sc = workload::make_voip_office_scenario(3, 100'000'000);
  core::AnalysisContext ctx(sc.network, sc.flows);
  const auto gmf_res = core::analyze_holistic(ctx);
  const auto spor_res = analyze_sporadic_baseline(sc.network, sc.flows);
  ASSERT_TRUE(gmf_res.converged);
  ASSERT_TRUE(spor_res.converged);
  EXPECT_EQ(gmf_res.schedulable, spor_res.schedulable);
  for (std::size_t f = 0; f < sc.flows.size(); ++f) {
    EXPECT_EQ(gmf_res.worst_response(core::FlowId(static_cast<std::int32_t>(f))),
              spor_res.worst_response(core::FlowId(static_cast<std::int32_t>(f))));
  }
}

TEST(Sporadic, GmfAcceptsWhatSporadicRejects) {
  // A concrete witness of the GMF advantage: one big frame among many small
  // ones fits; "every frame is big" does not.
  const auto star = net::make_star_network(4, kSpeed);
  std::vector<gmf::FrameSpec> fr(4);
  for (int k = 0; k < 4; ++k) {
    fr[static_cast<std::size_t>(k)] = {gmfnet::Time::ms(10),
                                       gmfnet::Time::ms(40),
                                       gmfnet::Time::zero(),
                                       (k == 0 ? 9'000 : 500) * 8};
  }
  std::vector<gmf::Flow> flows = {
      gmf::Flow("gmf-a",
                net::Route({star.hosts[0], star.sw, star.hosts[1]}), fr),
      gmf::Flow("gmf-b",
                net::Route({star.hosts[2], star.sw, star.hosts[1]}), fr)};
  core::AnalysisContext ctx(star.net, flows);
  const auto gmf_res = core::analyze_holistic(ctx);
  EXPECT_TRUE(gmf_res.converged);
  EXPECT_TRUE(gmf_res.schedulable);

  // Collapsed: 9000 bytes every 10 ms per flow = 2 x 7.5 Mbit/s on a
  // 10 Mbit/s shared egress -> infeasible.
  const auto spor_res = analyze_sporadic_baseline(star.net, flows);
  EXPECT_FALSE(spor_res.schedulable);
}

}  // namespace
}  // namespace gmfnet::baseline
