// The pluggable-solver contract, checked as a property over randomized
// scenarios: the safeguarded Anderson(m) strategy produces results
// *identical* to plain Gauss-Seidel — same convergence/schedulability
// verdicts, same per-frame response bounds, same fixed-point jitter maps —
// across whole-set solves, forced-safeguard-fallback paths (gain cranked so
// every proposal overshoots and is rolled back), and the engine's
// incremental and what-if runs.
//
// Soundness argument (see core::SolverOptions): the plain iteration is a
// Kleene climb to the least fixed point; an accelerated iterate is only
// kept when the next plain sweep certifies it (z = G(y) >= y with strict
// advance, no divergence), and convergence is only ever declared on an
// unchanged plain sweep.  On acyclic interference graphs — every DM-
// prioritized workload generate() produces — the fixed point is unique and
// the certificate makes acceleration exactly identical; on cyclic graphs
// the driver stays plain unless accept_cyclic opts into the conservative
// upper-bound regime.  This suite is the executable version of both
// halves of that argument.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/holistic.hpp"
#include "core/priority.hpp"
#include "engine/analysis_engine.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/taskset_gen.hpp"

namespace gmfnet::core {
namespace {

void expect_identical(const HolisticResult& a, const HolisticResult& b,
                      const std::string& where) {
  ASSERT_EQ(a.converged, b.converged) << where;
  ASSERT_EQ(a.schedulable, b.schedulable) << where;
  if (!a.converged) return;  // partial per-sweep state is not comparable
  EXPECT_TRUE(a.jitters == b.jitters) << where << ": fixed points differ";
  ASSERT_EQ(a.flows.size(), b.flows.size()) << where;
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    const FlowId id(static_cast<std::int32_t>(f));
    EXPECT_EQ(a.worst_response(id), b.worst_response(id))
        << where << ": flow " << f;
    ASSERT_EQ(a.flows[f].frames.size(), b.flows[f].frames.size()) << where;
    for (std::size_t k = 0; k < a.flows[f].frames.size(); ++k) {
      EXPECT_EQ(a.flows[f].frames[k].response, b.flows[f].frames[k].response)
          << where << ": flow " << f << " frame " << k;
      EXPECT_EQ(a.flows[f].frames[k].meets_deadline,
                b.flows[f].frames[k].meets_deadline)
          << where << ": flow " << f << " frame " << k;
    }
  }
}

/// A randomized scenario on a rotating topology family.  High utilizations
/// (up to ~0.95) are deliberately included: slow-converging near-saturation
/// solves are where acceleration actually fires, and unschedulable /
/// divergent sets must agree on the verdict too.
struct Generated {
  net::Network net;
  std::vector<gmf::Flow> flows;
};

Generated generate(std::uint64_t seed, double util_lo, double util_hi) {
  Rng rng(0xA11D'5EEDull + seed * 0x9E3779B9ull);
  Generated g;
  std::vector<net::NodeId> hosts;
  switch (seed % 3) {
    case 0: {
      const auto fig = net::make_figure1_network(100'000'000);
      g.net = fig.net;
      hosts = {fig.host0, fig.host1, fig.host2, fig.host3};
      break;
    }
    case 1: {
      const auto star = net::make_star_network(6, 100'000'000);
      g.net = star.net;
      hosts = star.hosts;
      break;
    }
    default: {
      const auto line = net::make_line_network(3, 100'000'000);
      g.net = line.net;
      hosts = line.leaf_hosts;
      hosts.push_back(line.src_host);
      hosts.push_back(line.dst_host);
      break;
    }
  }
  workload::TasksetParams params;
  params.num_flows = 4 + static_cast<int>(rng.next_below(5));  // 4..8
  params.total_utilization = rng.uniform(util_lo, util_hi);
  params.deadline_factor_lo = 1.5;
  params.deadline_factor_hi = 4.0;
  auto ts = workload::generate_taskset(g.net, hosts, params, rng);
  EXPECT_TRUE(ts.has_value()) << "seed " << seed;
  if (ts) g.flows = std::move(ts->flows);
  core::assign_priorities(g.flows, core::PriorityScheme::kDeadlineMonotonic);
  return g;
}

SolverOptions anderson(int m) {
  SolverOptions so;
  so.mode = SolverMode::kAnderson;
  so.m = m;
  return so;
}

class SolverEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverEquivalence, WholeSetMatchesPlain) {
  const std::uint64_t seed = GetParam();
  // Sweep the utilization band from comfortable to past saturation.
  const Generated g = generate(seed, 0.3, 1.1);
  const AnalysisContext ctx(g.net, g.flows);

  HolisticOptions plain;
  const HolisticResult rp = analyze_holistic(ctx, plain);

  for (const int m : {1, 2, 3}) {
    HolisticOptions acc;
    acc.solver = anderson(m);
    IncrementalStats is;
    const HolisticResult ra = solve_holistic(ctx, SolveRequest{}, acc, &is);
    expect_identical(ra, rp,
                     "seed " + std::to_string(seed) + " anderson:" +
                         std::to_string(m));
    if (ra.converged) {
      // The accelerated run never needs more sweeps than the cap and never
      // declares convergence on anything but an unchanged plain sweep.
      EXPECT_LE(ra.sweeps, acc.max_sweeps);
    }
  }
}

TEST_P(SolverEquivalence, ForcedSafeguardFallbackMatchesPlain) {
  const std::uint64_t seed = GetParam();
  const Generated g = generate(seed, 0.5, 1.0);
  const AnalysisContext ctx(g.net, g.flows);

  const HolisticResult rp = analyze_holistic(ctx, HolisticOptions{});

  // A wildly overshooting gain makes proposals exceed the next plain
  // sweep's certification, forcing rollbacks: the safeguard path (rollback,
  // adaptive back-off, eventual disable) must still land on the exact plain
  // fixed point.  With a tight rejection budget the solve degenerates to
  // plain sweeps outright.
  HolisticOptions hostile;
  hostile.solver = anderson(2);
  hostile.solver.gain = 1000.0;
  hostile.solver.cap = 1e9;
  hostile.solver.max_rejects = 2;
  IncrementalStats is;
  const HolisticResult rh =
      solve_holistic(ctx, SolveRequest{}, hostile, &is);
  expect_identical(rh, rp, "seed " + std::to_string(seed) + " hostile gain");
  EXPECT_EQ(is.accel_accepted, 0u)
      << "seed " << seed << ": a 1000x-overshot iterate was certified";
}

TEST_P(SolverEquivalence, EngineIncrementalAndWhatIfMatchPlainEngine) {
  const std::uint64_t seed = GetParam();
  const Generated g = generate(seed, 0.4, 0.9);
  if (g.flows.size() < 3) GTEST_SKIP();

  core::HolisticOptions acc_opts;
  acc_opts.solver = anderson(1 + static_cast<int>(seed % 3));
  engine::AnalysisEngine plain_eng(g.net);
  engine::AnalysisEngine acc_eng(g.net, acc_opts);

  // Interleaved adds with per-step evaluation: every incremental solve of
  // the accelerated engine must match the plain engine bit-for-bit.
  for (std::size_t i = 0; i < g.flows.size(); ++i) {
    plain_eng.add_flow(g.flows[i]);
    acc_eng.add_flow(g.flows[i]);
    expect_identical(acc_eng.evaluate(), plain_eng.evaluate(),
                     "seed " + std::to_string(seed) + " after add " +
                         std::to_string(i));
  }

  // A removal (reset-dirty-component path) and a re-add (warm start).
  ASSERT_TRUE(plain_eng.remove_flow(0));
  ASSERT_TRUE(acc_eng.remove_flow(0));
  expect_identical(acc_eng.evaluate(), plain_eng.evaluate(),
                   "seed " + std::to_string(seed) + " after remove");
  plain_eng.add_flow(g.flows[0]);
  acc_eng.add_flow(g.flows[0]);
  expect_identical(acc_eng.evaluate(), plain_eng.evaluate(),
                   "seed " + std::to_string(seed) + " after re-add");

  // What-if probes (snapshot restricted solves) agree and commit nothing.
  for (std::size_t c = 0; c < 2 && c < g.flows.size(); ++c) {
    engine::WhatIfResult wp = plain_eng.what_if(g.flows[c]);
    engine::WhatIfResult wa = acc_eng.what_if(g.flows[c]);
    ASSERT_EQ(wa.admissible, wp.admissible)
        << "seed " << seed << " what-if " << c;
    expect_identical(wa.result(), wp.result(),
                     "seed " + std::to_string(seed) + " what-if " +
                         std::to_string(c));
  }
  EXPECT_EQ(acc_eng.flow_count(), plain_eng.flow_count());
}

INSTANTIATE_TEST_SUITE_P(Scenarios, SolverEquivalence,
                         ::testing::Range<std::uint64_t>(0, 40));

// ------------------------------------------------------------------------
// The cyclic regime (see core::SolverOptions).  Two equal-priority flows
// crossing a switch ring over two shared links in OPPOSITE route order
// close a jitter feedback cycle A@a <- B@a <- B@b <- A@b <- A@a; near
// saturation its lap gain approaches 1 and the plain climb becomes a slow
// geometric ratchet — the one workload family where acceleration has real
// work to do, and also the one where the fixed point stops being unique.
// Natural DM-priority workloads (everything generate() produces) have
// acyclic interference and converge in a handful of sweeps.
struct Ring {
  net::Network net;
  std::vector<gmf::Flow> flows;
};

Ring make_near_critical_ring(std::int64_t separation_us) {
  Ring r;
  net::Network& netw = r.net;
  const auto X = netw.add_switch("X"), Y = netw.add_switch("Y");
  const auto M = netw.add_switch("M"), Z = netw.add_switch("Z");
  const auto W = netw.add_switch("W"), N = netw.add_switch("N");
  const auto hA = netw.add_endhost("hA"), hA2 = netw.add_endhost("hA2");
  const auto hB = netw.add_endhost("hB"), hB2 = netw.add_endhost("hB2");
  const ethernet::LinkSpeedBps sp = 100'000'000;
  netw.add_duplex_link(X, Y, sp);
  netw.add_duplex_link(Y, M, sp);
  netw.add_duplex_link(M, Z, sp);
  netw.add_duplex_link(Z, W, sp);
  netw.add_duplex_link(W, N, sp);
  netw.add_duplex_link(N, X, sp);
  netw.add_duplex_link(hA, X, sp);
  netw.add_duplex_link(W, hA2, sp);
  netw.add_duplex_link(hB, Z, sp);
  netw.add_duplex_link(Y, hB2, sp);
  netw.validate();
  gmf::FrameSpec fs;
  fs.min_separation = Time::us(separation_us);
  fs.deadline = Time::ms(500);
  fs.jitter = Time::ms(2);
  fs.payload_bits = 1000 * 8;
  // A takes X->Y and Z->W; B takes Z->W then (around the ring) X->Y: the
  // shared links appear in opposite order, so each flow's jitter at a
  // shared link depends on the other's response there.  Equal priorities
  // make the interference mutual.
  r.flows.emplace_back("A", net::Route({hA, X, Y, M, Z, W, hA2}),
                       std::vector<gmf::FrameSpec>{fs}, 3);
  r.flows.emplace_back("B", net::Route({hB, Z, W, N, X, Y, hB2}),
                       std::vector<gmf::FrameSpec>{fs}, 3);
  return r;
}

// By default Anderson must detect the interference cycle and stay plain:
// exact identity is preserved because no speculation ever happens.
TEST(SolverAcceleration, CyclicInterferenceKeepsDefaultAndersonPlain) {
  const Ring r = make_near_critical_ring(202);
  const AnalysisContext ctx(r.net, r.flows);
  HolisticOptions plain;
  plain.max_sweeps = 512;  // the ratchet needs ~70 sweeps to converge
  const HolisticResult rp = analyze_holistic(ctx, plain);
  ASSERT_TRUE(rp.converged);

  HolisticOptions acc = plain;
  acc.solver = anderson(2);
  IncrementalStats is;
  const HolisticResult ra = solve_holistic(ctx, SolveRequest{}, acc, &is);
  expect_identical(ra, rp, "guarded cyclic ring");
  EXPECT_EQ(ra.sweeps, rp.sweeps);
  EXPECT_EQ(is.accel_accepted, 0u)
      << "the cycle guard must keep speculation off without accept_cyclic";
  EXPECT_EQ(is.accel_rejected, 0u);
}

// With accept_cyclic the accelerator must actually fire and pay off on the
// near-critical ring, and every result must honor the conservative
// contract: a certified fixed point at-or-above the plain least fixed
// point, slot for slot, with the same verdicts.
TEST(SolverAcceleration, FiresOnNearCriticalCycleWithOptIn) {
  const Ring r = make_near_critical_ring(202);
  const AnalysisContext ctx(r.net, r.flows);
  HolisticOptions plain;
  plain.max_sweeps = 512;
  const HolisticResult rp = analyze_holistic(ctx, plain);
  ASSERT_TRUE(rp.converged);
  ASSERT_GT(rp.sweeps, 40) << "the scenario is supposed to ratchet slowly";

  for (const int m : {1, 2, 3}) {
    HolisticOptions acc = plain;
    acc.solver = anderson(m);
    acc.solver.accept_cyclic = true;
    IncrementalStats is;
    const HolisticResult ra = solve_holistic(ctx, SolveRequest{}, acc, &is);
    const std::string where = "cyclic opt-in m=" + std::to_string(m);
    ASSERT_TRUE(ra.converged) << where;
    EXPECT_GT(is.accel_accepted, 0u)
        << where << ": no accelerated iterate was ever certified — the "
                    "Anderson path is not being exercised";
    EXPECT_LT(ra.sweeps, rp.sweeps)
        << where << ": acceleration must pay off on the ratchet";
    EXPECT_EQ(ra.schedulable, rp.schedulable) << where;
    for (std::size_t f = 0; f < r.flows.size(); ++f) {
      const FlowId id(static_cast<std::int32_t>(f));
      EXPECT_GE(ra.worst_response(id), rp.worst_response(id)) << where;
      for (const StageKey& st : ctx.stages(id)) {
        for (std::size_t k = 0; k < ctx.flow(id).frame_count(); ++k) {
          EXPECT_GE(ra.jitters.jitter(id, st, k), rp.jitters.jitter(id, st, k))
              << where << ": an accelerated fixed point dipped below the "
                          "least fixed point — the certificate is broken";
        }
      }
    }
  }
}

// ------------------------------------------------------------------------
// Spec parsing + env plumbing (the CI toggle).
TEST(SolverSpec, ParsesAndRejects) {
  SolverOptions so;
  EXPECT_TRUE(parse_solver_spec("plain", so));
  EXPECT_EQ(so.mode, SolverMode::kPlain);
  EXPECT_TRUE(parse_solver_spec("anderson", so));
  EXPECT_EQ(so.mode, SolverMode::kAnderson);
  EXPECT_EQ(so.m, 1);
  EXPECT_TRUE(parse_solver_spec("anderson:3", so));
  EXPECT_EQ(so.m, 3);

  SolverOptions untouched = anderson(7);
  SolverOptions probe = untouched;
  EXPECT_FALSE(parse_solver_spec("", probe));
  EXPECT_FALSE(parse_solver_spec("anderson:0", probe));
  EXPECT_FALSE(parse_solver_spec("anderson:9", probe));
  EXPECT_FALSE(parse_solver_spec("anderson:12", probe));
  EXPECT_FALSE(parse_solver_spec("newton", probe));
  EXPECT_EQ(probe, untouched) << "a failed parse must leave `out` untouched";
}

TEST(SolverSpec, EnvRoundTripAndLoudFailure) {
  ASSERT_EQ(setenv("GMFNET_SOLVER", "anderson:2", 1), 0);
  const SolverOptions so = solver_options_from_env();
  EXPECT_EQ(so.mode, SolverMode::kAnderson);
  EXPECT_EQ(so.m, 2);
  ASSERT_EQ(setenv("GMFNET_SOLVER", "bogus", 1), 0);
  EXPECT_THROW((void)solver_options_from_env(), std::runtime_error);
  ASSERT_EQ(unsetenv("GMFNET_SOLVER"), 0);
  EXPECT_EQ(solver_options_from_env(), SolverOptions{});
}

}  // namespace
}  // namespace gmfnet::core
