#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace gmfnet {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Percentiles, MedianAndExtremes) {
  Percentiles p;
  for (int i = 1; i <= 101; ++i) p.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p.median(), 51.0);
  EXPECT_DOUBLE_EQ(p.min(), 1.0);
  EXPECT_DOUBLE_EQ(p.max(), 101.0);
  EXPECT_DOUBLE_EQ(p.percentile(99), 100.0);
}

TEST(Percentiles, InterpolatesBetweenSamples) {
  Percentiles p;
  p.add(0.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(p.percentile(25), 2.5);
}

TEST(Percentiles, AcceptsTimeSamples) {
  Percentiles p;
  p.add(Time::us(10));
  p.add(Time::us(20));
  EXPECT_DOUBLE_EQ(p.max(), Time::us(20).ps());
}

TEST(Percentiles, QueryAfterAddKeepsWorking) {
  Percentiles p;
  p.add(1.0);
  EXPECT_DOUBLE_EQ(p.median(), 1.0);
  p.add(3.0);  // invalidates the sort; must re-sort internally
  EXPECT_DOUBLE_EQ(p.max(), 3.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bucket 0
  h.add(9.99);   // bucket 4
  h.add(-5.0);   // clamps to bucket 0
  h.add(100.0);  // clamps to bucket 4
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

}  // namespace
}  // namespace gmfnet
