// Replication chaos soak — the invariant the whole tentpole exists for:
//
//   Every verdict a replica delivers is bit-identical to a single
//   in-process mirror engine driven through the same committed ops, no
//   matter what the replication link did in between — short writes,
//   EINTR storms, delays, connection resets (the PR 7 injector, on the
//   replication thread only) — and across kill-the-primary failovers.
//
// The harness runs a primary + replica pair under a seeded fault storm
// on the replication link while a clean operator connection drives a
// randomized admit/remove mix.  Every committed op is recorded in commit
// order; between bursts the replica is polled to the primary's position
// and probed — verdicts must match the mirror bit-for-bit.  Periodically
// the primary is killed mid-load and the replica promoted; committed ops
// beyond the replica's applied position are lost by design (asynchronous
// replication), so the mirror is rebuilt from the op log truncated to
// the promoted daemon's commit_seq — everything it acknowledged after
// promotion must again match.  A deliberately tiny journal forces the
// occasional sequence gap, proving gap recovery (full resync) under
// fire.
//
// GMFNET_REPL_CHAOS_OPS scales the committed-op budget (default 45).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/analysis_engine.hpp"
#include "net/topology.hpp"
#include "rpc/client.hpp"
#include "rpc/fault_injection.hpp"
#include "rpc/replication.hpp"
#include "rpc/server.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::rpc {
namespace {

using namespace std::chrono_literals;

constexpr ethernet::LinkSpeedBps kSpeed = 100'000'000;

struct Campus {
  net::Network net;
  std::vector<net::NodeId> hosts;  // cell-major
  std::vector<net::NodeId> switches;
};

Campus make_campus(int cells, int hosts_per_cell) {
  Campus c;
  for (int cell = 0; cell < cells; ++cell) {
    const net::NodeId sw = c.net.add_switch("sw" + std::to_string(cell));
    c.switches.push_back(sw);
    for (int h = 0; h < hosts_per_cell; ++h) {
      const net::NodeId host = c.net.add_endhost(
          "c" + std::to_string(cell) + "h" + std::to_string(h));
      c.net.add_duplex_link(host, sw, kSpeed);
      c.hosts.push_back(host);
    }
  }
  return c;
}

int chaos_ops() {
  if (const char* env = std::getenv("GMFNET_REPL_CHAOS_OPS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 45;
}

std::string fresh_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/gmfnet_replchaos_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

class TestDaemon {
 public:
  explicit TestDaemon(const net::Network& network, ServerConfig cfg = {})
      : engine_(std::make_shared<engine::AnalysisEngine>(network)) {
    cfg.unix_path = fresh_socket_path();
    server_ = std::make_unique<Server>(engine_, cfg);
    path_ = server_->unix_path();
    thread_ = std::thread([this] { server_->serve(); });
  }

  ~TestDaemon() { stop(); }

  void stop() {
    if (server_) server_->request_stop();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] Client connect() const { return Client::connect_unix(path_); }
  [[nodiscard]] Server& server() { return *server_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::shared_ptr<engine::AnalysisEngine> engine_;
  std::unique_ptr<Server> server_;
  std::string path_;
  std::thread thread_;
};

/// One committed mutation, re-playable into a fresh mirror engine.
struct Op {
  bool is_admit = true;
  gmf::Flow flow;         // admit
  std::size_t index = 0;  // remove
};

/// Replays ops[0..count) into a fresh engine.  Every op committed on a
/// primary must commit identically here — engine determinism.
std::unique_ptr<engine::AnalysisEngine> rebuild_mirror(
    const net::Network& net, const std::vector<Op>& ops, std::size_t count) {
  auto mirror = std::make_unique<engine::AnalysisEngine>(net);
  for (std::size_t i = 0; i < count; ++i) {
    if (ops[i].is_admit) {
      EXPECT_TRUE(mirror->try_admit(ops[i].flow).has_value())
          << "replayed admit " << i << " diverged";
    } else {
      EXPECT_TRUE(mirror->remove_flow(ops[i].index))
          << "replayed remove " << i << " diverged";
    }
  }
  return mirror;
}

bool await_caught_up(Server& replica, std::uint64_t epoch,
                     std::uint64_t commit_seq, int timeout_ms = 30'000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (replica.epoch() == epoch && replica.commit_seq() == commit_seq) {
      return true;
    }
    std::this_thread::sleep_for(5ms);
  }
  return false;
}

void expect_verdicts_match(const std::vector<engine::WhatIfResult>& got,
                           const std::vector<engine::WhatIfResult>& want,
                           const std::string& where) {
  ASSERT_EQ(got.size(), want.size()) << where;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].admissible, want[i].admissible)
        << where << ": candidate " << i;
    const core::HolisticResult& a = got[i].result();
    const core::HolisticResult& b = want[i].result();
    ASSERT_EQ(a.converged, b.converged) << where << ": candidate " << i;
    ASSERT_EQ(a.schedulable, b.schedulable) << where << ": candidate " << i;
    ASSERT_EQ(a.sweeps, b.sweeps) << where << ": candidate " << i;
    ASSERT_TRUE(a.jitters == b.jitters)
        << where << ": candidate " << i << ": jitter maps differ";
  }
}

TEST(ReplicationChaos, ReplicaVerdictsSurviveFaultStormAndFailovers) {
  const Campus campus = make_campus(3, 4);
  Rng rng(0xC0FFEE);

  // The storm hits ONLY the replication link (ServerConfig::repl_fault is
  // installed on the replica's replication thread); the operator client
  // and the primary's own syscalls stay honest.
  FaultProfile profile;
  profile.seed = 0x57A6E;
  profile.short_io = 0.20;
  profile.eintr = 0.15;
  profile.delay = 0.10;
  profile.max_delay_us = 200;
  profile.reset = 0.05;
  FaultInjector injector(profile);

  const auto replica_cfg = [&](const std::string& primary_path) {
    ServerConfig cfg;
    cfg.replica_of = "unix:" + primary_path;
    // Tiny journal: a replica knocked out by a reset long enough falls
    // behind the window and must recover via full resync.
    cfg.journal_capacity = 8;
    cfg.repl_backoff_initial_ms = 2;
    cfg.repl_backoff_max_ms = 30;
    cfg.repl_backoff_seed = 0x5EED;
    cfg.repl_fault = &injector;
    return cfg;
  };
  const auto primary_cfg = [] {
    ServerConfig cfg;
    cfg.journal_capacity = 8;
    return cfg;
  };

  auto primary = std::make_unique<TestDaemon>(campus.net, primary_cfg());
  auto replica =
      std::make_unique<TestDaemon>(campus.net, replica_cfg(primary->path()));

  std::vector<Op> ops;  // ops[s-1] committed at seq s, current history
  const int total_ops = chaos_ops();
  const int ops_per_round = 5;
  const int rounds_per_failover = 3;
  std::uint64_t expected_epoch = 1;
  int flow_serial = 0;
  int failovers = 0;

  auto client = std::make_unique<Client>(primary->connect());
  auto mirror = rebuild_mirror(campus.net, ops, 0);

  const auto make_candidate = [&](const char* tag) {
    // Both ends in one cell: the campus stars have no inter-switch links.
    const std::size_t per_cell = campus.hosts.size() / campus.switches.size();
    const auto cell =
        static_cast<std::size_t>(rng.next_below(campus.switches.size()));
    const auto a = static_cast<std::size_t>(rng.next_below(per_cell));
    std::size_t b = a;
    while (b == a) b = static_cast<std::size_t>(rng.next_below(per_cell));
    // Every fourth flow gets a hopeless deadline: rejected admissions
    // must flow through the harness too (they commit nothing and must
    // not be journaled).
    const bool hopeless = rng.next_below(4) == 0;
    return workload::make_voip_flow(
        std::string(tag) + std::to_string(flow_serial++),
        net::Route({campus.hosts[cell * per_cell + a], campus.switches[cell],
                    campus.hosts[cell * per_cell + b]}),
        hopeless ? gmfnet::Time::us(30) : gmfnet::Time::ms(20));
  };

  int round = 0;
  while (static_cast<int>(ops.size()) < total_ops) {
    // -- a burst of mixed traffic on the primary ---------------------------
    for (int k = 0; k < ops_per_round; ++k) {
      if (mirror->flow_count() > 2 && rng.next_below(4) == 0) {
        const auto idx =
            static_cast<std::size_t>(rng.next_below(mirror->flow_count()));
        const bool removed = client->remove(idx);
        ASSERT_EQ(removed, mirror->remove_flow(idx));
        if (removed) ops.push_back(Op{false, gmf::Flow{}, idx});
      } else {
        const gmf::Flow cand = make_candidate("c");
        const std::optional<core::HolisticResult> verdict =
            client->admit(cand);
        ASSERT_EQ(verdict.has_value(), mirror->try_admit(cand).has_value());
        if (verdict) ops.push_back(Op{true, cand, 0});
      }
    }
    ASSERT_EQ(primary->server().commit_seq(), ops.size())
        << "journal must carry exactly the committed ops";

    // -- replica catches up through the storm, then must answer exactly
    //    like the mirror ---------------------------------------------------
    ASSERT_TRUE(await_caught_up(replica->server(), expected_epoch,
                                ops.size()))
        << "replica never converged (round " << round << ")";
    std::vector<gmf::Flow> probes;
    for (int p = 0; p < 3; ++p) probes.push_back(make_candidate("p"));
    Client reader = replica->connect();
    expect_verdicts_match(reader.what_if_batch(probes),
                          mirror->evaluate_batch(probes),
                          "round " + std::to_string(round));

    // -- periodic failover: kill the primary mid-flight, promote ----------
    if (++round % rounds_per_failover == 0 &&
        static_cast<int>(ops.size()) < total_ops) {
      client.reset();
      primary->stop();
      primary.reset();

      Client promoter = replica->connect();
      const std::uint64_t new_epoch = promoter.promote();
      ASSERT_EQ(new_epoch, ++expected_epoch);
      ++failovers;

      // Asynchronous replication: anything the dead primary committed
      // past the replica's applied position is gone.  Truncate history
      // to the promoted daemon's position and rebuild the mirror.
      const std::uint64_t kept = replica->server().commit_seq();
      ASSERT_LE(kept, ops.size());
      ops.resize(kept);
      mirror = rebuild_mirror(campus.net, ops, ops.size());

      primary = std::move(replica);
      replica = std::make_unique<TestDaemon>(campus.net,
                                             replica_cfg(primary->path()));
      client = std::make_unique<Client>(primary->connect());

      // The promoted daemon must agree with the rebuilt mirror before
      // the next burst piles on.
      std::vector<gmf::Flow> post;
      for (int p = 0; p < 2; ++p) post.push_back(make_candidate("f"));
      expect_verdicts_match(client->what_if_batch(post),
                            mirror->evaluate_batch(post),
                            "post-failover " + std::to_string(failovers));
    }
  }

  // Final convergence: replica equals mirror equals primary.
  ASSERT_TRUE(await_caught_up(replica->server(), expected_epoch, ops.size()));
  Client reader = replica->connect();
  EXPECT_EQ(reader.stats().flows, mirror->flow_count());
  std::vector<gmf::Flow> finals;
  for (int p = 0; p < 4; ++p) finals.push_back(make_candidate("z"));
  expect_verdicts_match(reader.what_if_batch(finals),
                        mirror->evaluate_batch(finals), "final");

  // The soak only counts if the storm actually hit the link.
  const ReplicationClient* link = replica->server().replication_client();
  ASSERT_NE(link, nullptr);
  EXPECT_GT(injector.ios(), 0u);
  EXPECT_GT(injector.shorts() + injector.eintrs() + injector.delays() +
                injector.resets(),
            0u)
      << "fault storm never perturbed the replication link";
  EXPECT_GE(failovers, 2) << "the soak must cross at least two failovers";

  std::printf(
      "repl-chaos: ops=%zu failovers=%d injected(ios=%llu short=%llu "
      "eintr=%llu delay=%llu reset=%llu)\n",
      ops.size(), failovers,
      static_cast<unsigned long long>(injector.ios()),
      static_cast<unsigned long long>(injector.shorts()),
      static_cast<unsigned long long>(injector.eintrs()),
      static_cast<unsigned long long>(injector.delays()),
      static_cast<unsigned long long>(injector.resets()));
}

}  // namespace
}  // namespace gmfnet::rpc
