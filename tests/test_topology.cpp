#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace gmfnet::net {
namespace {

TEST(Topology, Figure1MatchesPaperNumbering) {
  const Figure1Network f = make_figure1_network();
  EXPECT_EQ(f.net.node_count(), 8u);
  EXPECT_EQ(f.host0.v, 0);
  EXPECT_EQ(f.host3.v, 3);
  EXPECT_EQ(f.sw4.v, 4);
  EXPECT_EQ(f.sw6.v, 6);
  EXPECT_EQ(f.router7.v, 7);
  EXPECT_EQ(f.net.node(f.sw4).kind, NodeKind::kSwitch);
  EXPECT_EQ(f.net.node(f.router7).kind, NodeKind::kRouter);
}

TEST(Topology, Figure1Cabling) {
  const Figure1Network f = make_figure1_network();
  // Figure 5 shows switch 4 with 4 interfaces: hosts 0, 1 and switches 5, 6.
  EXPECT_EQ(f.net.ninterfaces(f.sw4), 4);
  EXPECT_TRUE(f.net.has_link(f.host0, f.sw4));
  EXPECT_TRUE(f.net.has_link(f.sw4, f.sw6));
  EXPECT_TRUE(f.net.has_link(f.sw6, f.host3));
  EXPECT_TRUE(f.net.has_link(f.sw6, f.router7));
  EXPECT_FALSE(f.net.has_link(f.host0, f.sw5));
  // The worked example in §3.1 uses 10 Mbit/s on link(0,4).
  EXPECT_EQ(f.net.linkspeed(f.host0, f.sw4), 10'000'000);
}

TEST(Topology, Figure1CustomSpeedAndParams) {
  SwitchParams p;
  p.processors = 2;
  const Figure1Network f = make_figure1_network(1'000'000'000, p);
  EXPECT_EQ(f.net.linkspeed(f.sw4, f.sw6), 1'000'000'000);
  EXPECT_EQ(f.net.node(f.sw5).sw.processors, 2);
}

TEST(Topology, LineNetworkShape) {
  const LineNetwork l = make_line_network(3, 100'000'000);
  EXPECT_EQ(l.switches.size(), 3u);
  EXPECT_EQ(l.leaf_hosts.size(), 3u);
  // src - sw0, sw0 - sw1, sw1 - sw2, sw2 - dst, plus one leaf per switch.
  EXPECT_TRUE(l.net.has_link(l.src_host, l.switches[0]));
  EXPECT_TRUE(l.net.has_link(l.switches[2], l.dst_host));
  EXPECT_TRUE(l.net.has_link(l.leaf_hosts[1], l.switches[1]));
  // Middle switch: two neighbours on the line + leaf = 3 interfaces.
  EXPECT_EQ(l.net.ninterfaces(l.switches[1]), 3);
}

TEST(Topology, LineNetworkSingleSwitch) {
  const LineNetwork l = make_line_network(1, 10'000'000);
  EXPECT_EQ(l.net.ninterfaces(l.switches[0]), 3);  // src, dst, leaf
}

TEST(Topology, LineNetworkRejectsZeroSwitches) {
  EXPECT_THROW(make_line_network(0, 10'000'000), std::invalid_argument);
}

TEST(Topology, StarNetworkShape) {
  const StarNetwork s = make_star_network(6, 100'000'000);
  EXPECT_EQ(s.hosts.size(), 6u);
  EXPECT_EQ(s.net.ninterfaces(s.sw), 6);
  for (const NodeId h : s.hosts) {
    EXPECT_TRUE(s.net.has_link(h, s.sw));
    EXPECT_TRUE(s.net.has_link(s.sw, h));
  }
}

TEST(Topology, TreeNetworkShape) {
  const TreeNetwork t = make_tree_network(3, 2, 100'000'000);
  EXPECT_EQ(t.switches.size(), 7u);  // 1 + 2 + 4
  EXPECT_EQ(t.hosts.size(), 8u);     // 4 leaves x 2 hosts
  // Root has two children; leaf switches have parent + 2 hosts.
  EXPECT_EQ(t.net.ninterfaces(t.root), 2);
}

TEST(Topology, TreeDepthOne) {
  const TreeNetwork t = make_tree_network(1, 3, 100'000'000);
  EXPECT_EQ(t.switches.size(), 1u);
  EXPECT_EQ(t.hosts.size(), 3u);
}

TEST(Topology, RandomNetworkConnectedAndValid) {
  Rng rng(123);
  const RandomNetwork r = make_random_network(6, 10, 4, 100'000'000, rng);
  EXPECT_EQ(r.switches.size(), 6u);
  EXPECT_EQ(r.hosts.size(), 10u);
  EXPECT_NO_THROW(r.net.validate());
  // Spanning-tree construction guarantees switch connectivity: every host
  // can reach every other host.
  for (std::size_t i = 1; i < r.hosts.size(); ++i) {
    // ninterfaces >= 1 for every host.
    EXPECT_GE(r.net.ninterfaces(r.hosts[i]), 1);
  }
}

TEST(Topology, RandomNetworkDeterministicPerSeed) {
  Rng rng1(7), rng2(7);
  const RandomNetwork a = make_random_network(5, 6, 2, 10'000'000, rng1);
  const RandomNetwork b = make_random_network(5, 6, 2, 10'000'000, rng2);
  ASSERT_EQ(a.net.link_count(), b.net.link_count());
  for (std::size_t i = 0; i < a.net.links().size(); ++i) {
    EXPECT_EQ(a.net.links()[i].src, b.net.links()[i].src);
    EXPECT_EQ(a.net.links()[i].dst, b.net.links()[i].dst);
  }
}

TEST(Topology, AllBuildersValidate) {
  EXPECT_NO_THROW(make_figure1_network().net.validate());
  EXPECT_NO_THROW(make_line_network(4, 1'000'000).net.validate());
  EXPECT_NO_THROW(make_star_network(3, 1'000'000).net.validate());
  EXPECT_NO_THROW(make_tree_network(2, 1, 1'000'000).net.validate());
}

}  // namespace
}  // namespace gmfnet::net
