// Reactor pipelining contracts (rpc/server.hpp):
//
//  * Segmentation independence: the frame decoder accepts many frames in
//    one segment and frames split at EVERY byte boundary — mid-header and
//    mid-body — and a client whose every syscall is clamped to one byte
//    (rpc::FaultInjector short-io) still gets bit-identical verdicts.
//
//  * Response ordering: responses on one connection always arrive in
//    request order, even when pipelined reads, mutations and stats
//    complete on different daemon threads at different times.
//
//  * Mutation coalescing: ADMIT frames queued while a commit is in
//    flight fold into one engine commit (observable via the
//    coalesced_commits counter) with verdicts identical to the
//    sequential path; ADMIT_BATCH commits N flows as ONE journal commit
//    and replicates to a subscriber as one kBatch delta.
//
//  * Stale Unix sockets: a socket file with no listener behind it is
//    reclaimed by listen_unix; a path a live daemon serves is refused
//    with EADDRINUSE.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/priority.hpp"
#include "engine/analysis_engine.hpp"
#include "net/topology.hpp"
#include "rpc/client.hpp"
#include "rpc/fault_injection.hpp"
#include "rpc/server.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/taskset_gen.hpp"

namespace gmfnet::rpc {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 100'000'000;

void expect_bit_identical(const core::HolisticResult& a,
                          const core::HolisticResult& b,
                          const std::string& where) {
  ASSERT_EQ(a.converged, b.converged) << where;
  ASSERT_EQ(a.schedulable, b.schedulable) << where;
  ASSERT_EQ(a.sweeps, b.sweeps) << where;
  EXPECT_TRUE(a.jitters == b.jitters) << where << ": jitter maps differ";
  ASSERT_EQ(a.flows.size(), b.flows.size()) << where;
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    ASSERT_EQ(a.flows[f].frames.size(), b.flows[f].frames.size()) << where;
    for (std::size_t k = 0; k < a.flows[f].frames.size(); ++k) {
      EXPECT_EQ(a.flows[f].frames[k].response, b.flows[f].frames[k].response)
          << where << ": flow " << f << " frame " << k;
    }
  }
}

std::string fresh_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/gmfnet_pipe_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// A served engine on a fresh Unix socket, plus the serve thread.
class TestDaemon {
 public:
  explicit TestDaemon(const net::Network& network, ServerConfig cfg = {})
      : engine_(std::make_shared<engine::AnalysisEngine>(network)) {
    cfg.unix_path = fresh_socket_path();
    server_ = std::make_unique<Server>(engine_, cfg);
    path_ = server_->unix_path();
    thread_ = std::thread([this] { server_->serve(); });
  }

  ~TestDaemon() {
    server_->request_stop();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] Client connect() const { return Client::connect_unix(path_); }
  [[nodiscard]] Server& server() { return *server_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::shared_ptr<engine::AnalysisEngine> engine_;
  std::unique_ptr<Server> server_;
  std::string path_;
  std::thread thread_;
};

/// A randomized multi-domain world plus a generated flow set.
struct Scenario {
  net::Network net;
  std::vector<gmf::Flow> flows;
};

Scenario make_scenario(std::uint64_t seed, int num_flows = 10) {
  Scenario s;
  std::vector<net::NodeId> hosts;
  for (int cell = 0; cell < 3; ++cell) {
    const net::NodeId sw = s.net.add_switch("sw" + std::to_string(cell));
    for (int h = 0; h < 4; ++h) {
      const net::NodeId host = s.net.add_endhost(
          "c" + std::to_string(cell) + "h" + std::to_string(h));
      s.net.add_duplex_link(host, sw, kSpeed);
      hosts.push_back(host);
    }
  }
  Rng rng(0x01BE11E5ull ^ (seed * 0x9E3779B9ull));
  workload::TasksetParams params;
  params.num_flows = num_flows;
  params.total_utilization = 0.5;
  params.deadline_factor_lo = 2.0;
  params.deadline_factor_hi = 4.0;
  auto ts = workload::generate_taskset(s.net, hosts, params, rng);
  EXPECT_TRUE(ts.has_value());
  s.flows = std::move(ts->flows);
  core::assign_priorities(s.flows, core::PriorityScheme::kDeadlineMonotonic);
  return s;
}

void send_all(Socket& sock, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = sock.send_some(data + off, len - off);
    ASSERT_GT(n, 0) << "raw send failed";
    off += static_cast<std::size_t>(n);
  }
}

// -------------------------------------------------- frame segmentation --

TEST(RpcPipeline, ManyFramesInOneSegmentAnswerInOrder) {
  const Scenario s = make_scenario(1);
  TestDaemon daemon(s.net);
  engine::AnalysisEngine mirror(s.net);

  // Every request of the burst in ONE buffer, flushed with one stream of
  // writes before any response is read.
  std::string wire;
  for (const gmf::Flow& f : s.flows) {
    wire += encode_request(AdmitRequest{f});
  }
  wire += encode_request(StatsRequest{});

  Socket raw = connect_unix(daemon.path(), 2'000);
  send_all(raw, wire.data(), wire.size());

  std::vector<bool> verdicts;
  for (std::size_t i = 0; i < s.flows.size(); ++i) {
    std::optional<std::string> frame = recv_frame(raw);
    ASSERT_TRUE(frame.has_value()) << "response " << i;
    const Response resp = decode_response(*frame);
    const auto* admit = std::get_if<AdmitResponse>(&resp);
    ASSERT_NE(admit, nullptr) << "response " << i << " out of order";
    verdicts.push_back(admit->result.has_value());
  }
  std::optional<std::string> last = recv_frame(raw);
  ASSERT_TRUE(last.has_value());
  const Response stats_resp = decode_response(*last);
  const auto* stats = std::get_if<StatsResponse>(&stats_resp);
  ASSERT_NE(stats, nullptr) << "STATS response out of order";

  // Verdicts identical to the sequential in-process path, and the final
  // resident set identical by construction.
  for (std::size_t i = 0; i < s.flows.size(); ++i) {
    EXPECT_EQ(verdicts[i], mirror.try_admit(s.flows[i]).has_value())
        << "flow " << i;
  }
  EXPECT_EQ(stats->flows, mirror.flow_count());
  EXPECT_GE(stats->pipelined_hwm, 2u);  // the burst actually pipelined
}

TEST(RpcPipeline, FrameSplitAtEveryByteBoundary) {
  const Scenario s = make_scenario(2, 6);
  TestDaemon daemon(s.net);
  engine::AnalysisEngine mirror(s.net);
  const engine::WhatIfResult expected = mirror.what_if(s.flows[0]);

  const std::string frame =
      encode_request(WhatIfBatchRequest{{s.flows[0]}});
  ASSERT_GT(frame.size(), kHeaderSize);  // splits cover header AND body

  Socket raw = connect_unix(daemon.path(), 2'000);
  for (std::size_t split = 1; split < frame.size(); ++split) {
    send_all(raw, frame.data(), split);
    // Give the reactor a beat so the two halves usually land as separate
    // reads (the decoder must be correct either way).
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    send_all(raw, frame.data() + split, frame.size() - split);
    std::optional<std::string> resp_frame = recv_frame(raw);
    ASSERT_TRUE(resp_frame.has_value()) << "split at byte " << split;
    const Response resp = decode_response(*resp_frame);
    const auto* wi = std::get_if<WhatIfBatchResponse>(&resp);
    ASSERT_NE(wi, nullptr) << "split at byte " << split;
    ASSERT_EQ(wi->results.size(), 1u) << "split at byte " << split;
    EXPECT_EQ(wi->results[0].admissible, expected.admissible)
        << "split at byte " << split;
  }
}

TEST(RpcPipeline, OneByteClientSyscallsStillBitIdentical) {
  const Scenario s = make_scenario(3, 8);
  TestDaemon daemon(s.net);
  engine::AnalysisEngine mirror(s.net);

  // Every client send/recv clamped to a single byte: the daemon sees the
  // worst possible fragmentation the kernel is allowed to produce.
  FaultProfile profile;
  profile.seed = 0xFEEDFACEull;
  profile.short_io = 1.0;
  FaultInjector injector(profile);

  Client client = daemon.connect();
  {
    ScopedFaultInjection scope(injector);
    for (const gmf::Flow& f : s.flows) {
      const std::optional<core::HolisticResult> remote = client.admit(f);
      const std::optional<core::HolisticResult> local = mirror.try_admit(f);
      ASSERT_EQ(remote.has_value(), local.has_value());
      if (remote) expect_bit_identical(*remote, *local, "short-io admit");
    }
    const engine::WhatIfResult remote_probe = client.what_if(s.flows[0]);
    const engine::WhatIfResult local_probe = mirror.what_if(s.flows[0]);
    EXPECT_EQ(remote_probe.admissible, local_probe.admissible);
    expect_bit_identical(remote_probe.result(), local_probe.result(),
                         "short-io what-if");
  }
  EXPECT_GT(injector.shorts(), 0u) << "the profile never actually fired";
}

// ----------------------------------------------------- response ordering --

TEST(RpcPipeline, InterleavedKindsAnswerInRequestOrder) {
  const Scenario s = make_scenario(4);
  TestDaemon daemon(s.net);
  engine::AnalysisEngine mirror(s.net);

  Client client = daemon.connect();
  // A heavy read first (fanned over the reader pool), then mutations and
  // cheap inline stats behind it: completion order scrambles, response
  // order must not.
  client.submit(WhatIfBatchRequest{s.flows});
  client.submit(StatsRequest{});
  client.submit(AdmitRequest{s.flows[0]});
  client.submit(StatsRequest{});
  client.submit(AdmitRequest{s.flows[1]});
  client.submit(RemoveRequest{0});
  ASSERT_EQ(client.pending(), 6u);

  const WhatIfBatchResponse probes = client.collect_as<WhatIfBatchResponse>();
  const StatsResponse stats_before = client.collect_as<StatsResponse>();
  const AdmitResponse admit0 = client.collect_as<AdmitResponse>();
  const StatsResponse stats_mid = client.collect_as<StatsResponse>();
  const AdmitResponse admit1 = client.collect_as<AdmitResponse>();
  const RemoveResponse removed = client.collect_as<RemoveResponse>();
  EXPECT_EQ(client.pending(), 0u);

  // The probe batch ran against the pre-admission snapshot.
  const std::vector<engine::WhatIfResult> local_probes =
      mirror.evaluate_batch(s.flows);
  ASSERT_EQ(probes.results.size(), local_probes.size());
  for (std::size_t i = 0; i < local_probes.size(); ++i) {
    EXPECT_EQ(probes.results[i].admissible, local_probes[i].admissible)
        << "probe " << i;
  }
  EXPECT_EQ(stats_before.flows, 0u);
  EXPECT_EQ(admit0.result.has_value(),
            mirror.try_admit(s.flows[0]).has_value());
  // Read-your-writes: a STATS behind an ADMIT in the pipeline observes
  // the admission, not the dispatch-time world.
  EXPECT_EQ(stats_mid.flows, mirror.flow_count());
  EXPECT_EQ(admit1.result.has_value(),
            mirror.try_admit(s.flows[1]).has_value());
  EXPECT_EQ(removed.removed, mirror.remove_flow(0));

  EXPECT_GE(daemon.server().pipelined_hwm(), 6u);
}

// ----------------------------------------------------- verdict-only mode --

TEST(RpcPipeline, VerdictOnlyProbesMatchFullProbesWithoutPayload) {
  const Scenario s = make_scenario(6);
  TestDaemon daemon(s.net);

  Client client = daemon.connect();
  // A non-trivial resident world (admit whatever fits).
  for (const gmf::Flow& f : s.flows) (void)client.admit(f);

  // Full and lean probes of the same candidates, one frame each: the lean
  // answers must agree verdict-for-verdict (both the inline small-batch
  // path and the pooled fat-batch path), while carrying no payload.
  const std::vector<engine::WhatIfResult> full =
      client.what_if_batch(s.flows);
  for (const std::size_t n : {std::size_t{1}, s.flows.size()}) {
    const std::vector<gmf::Flow> cands(s.flows.begin(),
                                       s.flows.begin() +
                                           static_cast<std::ptrdiff_t>(n));
    const std::vector<engine::WhatIfResult> lean =
        client.what_if_verdicts(cands);
    ASSERT_EQ(lean.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(lean[i].admissible, full[i].admissible) << "candidate " << i;
      EXPECT_EQ(lean[i].converged(), full[i].converged());
      EXPECT_EQ(lean[i].flow_count(), full[i].flow_count());
      EXPECT_FALSE(lean[i].detailed());
      EXPECT_THROW((void)lean[i].result(), std::logic_error);
    }
  }
}

// --------------------------------------------------- mutation coalescing --

TEST(RpcPipeline, PipelinedAdmitsCoalesceWithSequentialVerdicts) {
  const Scenario s = make_scenario(5, 24);
  TestDaemon daemon(s.net);
  engine::AnalysisEngine mirror(s.net);

  Client client = daemon.connect();
  for (const gmf::Flow& f : s.flows) client.submit(AdmitRequest{f});
  std::size_t admitted = 0;
  for (std::size_t i = 0; i < s.flows.size(); ++i) {
    const AdmitResponse resp = client.collect_as<AdmitResponse>();
    const bool local = mirror.try_admit(s.flows[i]).has_value();
    EXPECT_EQ(resp.result.has_value(), local) << "flow " << i;
    if (local) ++admitted;
  }

  const StatsResponse stats = client.stats();
  EXPECT_EQ(stats.flows, mirror.flow_count());
  // The mutation worker solves while the rest of the burst queues: at
  // least one group must have folded several admits into one commit.
  EXPECT_GT(stats.coalesced_commits, 0u);
  EXPECT_EQ(daemon.server().committed_mutations(), admitted);
  // Coalesced or not, commits publish worlds the sequential path would
  // have published: probes against the final snapshot are bit-identical.
  const engine::WhatIfResult remote_probe = client.what_if(s.flows[0]);
  const engine::WhatIfResult local_probe = mirror.what_if(s.flows[0]);
  EXPECT_EQ(remote_probe.admissible, local_probe.admissible);
  expect_bit_identical(remote_probe.result(), local_probe.result(),
                       "post-coalesce probe");
}

TEST(RpcPipeline, AdmitBatchCommitsOnceWithSequentialVerdicts) {
  const Scenario s = make_scenario(6, 16);
  TestDaemon daemon(s.net);
  engine::AnalysisEngine mirror(s.net);

  Client client = daemon.connect();
  const AdmitBatchResponse batch = client.admit_batch(s.flows);
  ASSERT_EQ(batch.admitted.size(), s.flows.size());
  for (std::size_t i = 0; i < s.flows.size(); ++i) {
    EXPECT_EQ(batch.admitted[i] != 0,
              mirror.try_admit(s.flows[i]).has_value())
        << "flow " << i;
  }
  EXPECT_EQ(batch.flows_after, mirror.flow_count());

  // N flows, ONE commit: the whole batch is a single journal entry.
  const StatsResponse stats = client.stats();
  EXPECT_EQ(stats.commit_seq, 1u);
  EXPECT_EQ(stats.flows, mirror.flow_count());

  const engine::WhatIfResult remote_probe = client.what_if(s.flows[0]);
  const engine::WhatIfResult local_probe = mirror.what_if(s.flows[0]);
  EXPECT_EQ(remote_probe.admissible, local_probe.admissible);
  expect_bit_identical(remote_probe.result(), local_probe.result(),
                       "post-batch probe");
}

TEST(RpcPipeline, CoalescedBatchReplicatesAsOneDelta) {
  const Scenario s = make_scenario(7, 12);
  TestDaemon primary(s.net);

  ServerConfig replica_cfg;
  replica_cfg.replica_of = "unix:" + primary.path();
  replica_cfg.repl_backoff_initial_ms = 5;
  replica_cfg.repl_backoff_max_ms = 50;
  TestDaemon replica(s.net, replica_cfg);

  Client client = primary.connect();
  const AdmitBatchResponse batch = client.admit_batch(s.flows);
  const std::uint64_t target = primary.server().commit_seq();
  ASSERT_EQ(target, 1u);  // one kBatch delta for the whole batch

  // The replica applies the batch delta (or full-syncs past it) within
  // the deadline.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (replica.server().commit_seq() < target &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(replica.server().commit_seq(), target) << "replica never caught up";

  Client rclient = replica.connect();
  const StatsResponse rstats = rclient.stats();
  EXPECT_EQ(rstats.flows, static_cast<std::uint64_t>(batch.flows_after));
  // Replica answers probes bit-identically to the primary's world.
  const engine::WhatIfResult p = client.what_if(s.flows[0]);
  const engine::WhatIfResult r = rclient.what_if(s.flows[0]);
  EXPECT_EQ(p.admissible, r.admissible);
  expect_bit_identical(p.result(), r.result(), "replica probe");
}

// ------------------------------------------------------ stale unix sockets --

TEST(RpcPipeline, StaleSocketFileIsReclaimed) {
  const std::string path = fresh_socket_path();
  // Manufacture a stale socket file: bind without listen, then abandon
  // the fd (simulating a daemon killed before it could unlink).
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ::close(fd);  // the file survives the fd

  // A fresh daemon must detect no one answers and reclaim the path.
  Listener reclaimed = Listener::listen_unix(path);
  EXPECT_TRUE(reclaimed.valid());
  reclaimed.close();
  ::unlink(path.c_str());
}

TEST(RpcPipeline, LiveSocketRefusedWithAddrInUse) {
  const std::string path = fresh_socket_path();
  Listener live = Listener::listen_unix(path);
  try {
    (void)Listener::listen_unix(path);
    FAIL() << "expected TransportError for a live socket";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.errno_value(), EADDRINUSE);
    EXPECT_NE(std::string(e.what()).find("live daemon"), std::string::npos);
  }
  live.close();
  ::unlink(path.c_str());
}

TEST(RpcPipeline, StaleSocketReclaimServesTraffic) {
  const Scenario s = make_scenario(8, 4);
  const std::string path = fresh_socket_path();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ::close(fd);

  // End to end: the daemon reclaims the stale path and serves on it.
  auto engine = std::make_shared<engine::AnalysisEngine>(s.net);
  ServerConfig cfg;
  cfg.unix_path = path;
  Server server(engine, cfg);
  std::thread serve_thread([&] { server.serve(); });
  Client client = Client::connect_unix(path);
  EXPECT_EQ(client.stats().flows, 0u);
  server.request_stop();
  serve_thread.join();
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace gmfnet::rpc
