// Tests of the Figure-6 end-to-end assembly.
#include "core/end_to_end.hpp"

#include <gtest/gtest.h>

#include "core/egress.hpp"
#include "core/first_hop.hpp"
#include "core/ingress.hpp"
#include "net/topology.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::core {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 10'000'000;

AnalysisContext lone_flow_ctx(const net::StarNetwork& star,
                              gmfnet::Time jitter = gmfnet::Time::zero()) {
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "a", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(20), gmfnet::Time::ms(20), 1000 * 8, 0, jitter)};
  return AnalysisContext(star.net, flows);
}

TEST(EndToEnd, LoneFlowSumsStages) {
  const auto star = net::make_star_network(4, kSpeed);
  const AnalysisContext ctx = lone_flow_ctx(star);
  JitterMap jm = JitterMap::initial(ctx);
  const FrameResult r = analyze_frame_end_to_end(ctx, jm, FlowId(0), 0);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.stages.size(), 3u);  // first link, in(sw), link(sw, dst)

  // Stage-by-stage totals must add up (source jitter is zero here).
  gmfnet::Time sum = gmfnet::Time::zero();
  for (const StageResponse& s : r.stages) {
    EXPECT_TRUE(s.hop.converged);
    sum += s.hop.response;
  }
  EXPECT_EQ(r.response, sum);
  EXPECT_TRUE(r.meets_deadline);
}

TEST(EndToEnd, SourceJitterIncludedInResponse) {
  const auto star = net::make_star_network(4, kSpeed);
  const AnalysisContext ctx0 = lone_flow_ctx(star);
  const AnalysisContext ctx1 = lone_flow_ctx(star, gmfnet::Time::ms(2));
  JitterMap j0 = JitterMap::initial(ctx0);
  JitterMap j1 = JitterMap::initial(ctx1);
  const FrameResult r0 = analyze_frame_end_to_end(ctx0, j0, FlowId(0), 0);
  const FrameResult r1 = analyze_frame_end_to_end(ctx1, j1, FlowId(0), 0);
  ASSERT_TRUE(r0.converged);
  ASSERT_TRUE(r1.converged);
  // Figure 6 line 3: RSUM starts at GJ; the lone flow sees no other
  // interference so the difference is exactly the jitter.
  EXPECT_EQ(r1.response, r0.response + gmfnet::Time::ms(2));
}

TEST(EndToEnd, StageJittersAreRecordedAsJsum) {
  const auto star = net::make_star_network(4, kSpeed);
  const AnalysisContext ctx = lone_flow_ctx(star, gmfnet::Time::us(300));
  JitterMap jm = JitterMap::initial(ctx);
  const FrameResult r = analyze_frame_end_to_end(ctx, jm, FlowId(0), 0);
  ASSERT_TRUE(r.converged);

  const auto& stages = ctx.stages(FlowId(0));
  // Line 8: first-link jitter = source GJ.
  EXPECT_EQ(jm.jitter(FlowId(0), stages[0], 0), gmfnet::Time::us(300));
  // Line 13: in(sw) jitter = GJ + R(first hop).
  EXPECT_EQ(jm.jitter(FlowId(0), stages[1], 0),
            gmfnet::Time::us(300) + r.stages[0].hop.response);
  // Line 17: egress-link jitter = GJ + R(first) + R(ingress).
  EXPECT_EQ(jm.jitter(FlowId(0), stages[2], 0),
            gmfnet::Time::us(300) + r.stages[0].hop.response +
                r.stages[1].hop.response);
}

TEST(EndToEnd, MatchesManualStageComposition) {
  // Recompute the pipeline by calling the per-hop analyses directly with
  // the jitters Figure 6 would assign, and compare.
  const auto star = net::make_star_network(4, kSpeed);
  const AnalysisContext ctx = lone_flow_ctx(star);
  JitterMap jm = JitterMap::initial(ctx);
  const FrameResult r = analyze_frame_end_to_end(ctx, jm, FlowId(0), 0);
  ASSERT_TRUE(r.converged);

  JitterMap manual = JitterMap::initial(ctx);
  const HopResult h1 = analyze_first_hop(ctx, manual, FlowId(0), 0);
  manual.set_jitter(FlowId(0), StageKey::ingress(star.sw), 0, h1.response);
  const HopResult h2 = analyze_ingress(ctx, manual, FlowId(0), 0, star.sw);
  manual.set_jitter(FlowId(0), StageKey::link(star.sw, star.hosts[1]), 0,
                    h1.response + h2.response);
  const HopResult h3 = analyze_egress(ctx, manual, FlowId(0), 0, star.sw);
  EXPECT_EQ(r.response, h1.response + h2.response + h3.response);
}

TEST(EndToEnd, MultiSwitchRouteHasTwoStagesPerSwitch) {
  const auto line = net::make_line_network(3, kSpeed);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "a",
      net::Route({line.src_host, line.switches[0], line.switches[1],
                  line.switches[2], line.dst_host}),
      gmfnet::Time::ms(20), gmfnet::Time::ms(20), 1000 * 8)};
  const AnalysisContext ctx(line.net, flows);
  JitterMap jm = JitterMap::initial(ctx);
  const FrameResult r = analyze_frame_end_to_end(ctx, jm, FlowId(0), 0);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.stages.size(), 1u + 2u * 3u);  // first link + 2 per switch
}

TEST(EndToEnd, DeadlineVerdictPerFrame) {
  const auto star = net::make_star_network(4, kSpeed);
  // Deadline so tight that even the lone flow misses it (MFT alone is
  // 1.23 ms > 1 ms).
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "tight", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(20), gmfnet::Time::ms(1), 1000 * 8)};
  const AnalysisContext ctx(star.net, flows);
  JitterMap jm = JitterMap::initial(ctx);
  const FrameResult r = analyze_frame_end_to_end(ctx, jm, FlowId(0), 0);
  ASSERT_TRUE(r.converged);
  EXPECT_FALSE(r.meets_deadline);
}

TEST(EndToEnd, FlowLevelAggregation) {
  const auto s = workload::make_figure2_scenario(kSpeed, false);
  const AnalysisContext ctx(s.network, s.flows);
  JitterMap jm = JitterMap::initial(ctx);
  const FlowResult fr = analyze_flow_end_to_end(ctx, jm, FlowId(0));
  ASSERT_EQ(fr.frames.size(), 9u);  // MPEG cycle
  EXPECT_TRUE(fr.all_converged());
  gmfnet::Time worst = gmfnet::Time::zero();
  for (const auto& f : fr.frames) worst = gmfnet::max(worst, f.response);
  EXPECT_EQ(fr.worst_response(), worst);
  // The big I+P frame must dominate the response times.
  EXPECT_EQ(fr.worst_response(), fr.frames[0].response);
}

TEST(EndToEnd, DivergentStageReportedNotThrown) {
  const auto star = net::make_star_network(4, kSpeed);
  // Overloaded: 15000 bytes every 2 ms over a 10 Mbit/s link.
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "over", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(2), gmfnet::Time::ms(2), 15000 * 8)};
  const AnalysisContext ctx(star.net, flows);
  JitterMap jm = JitterMap::initial(ctx);
  const FrameResult r = analyze_frame_end_to_end(ctx, jm, FlowId(0), 0);
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.meets_deadline);
  ASSERT_FALSE(r.stages.empty());
  EXPECT_FALSE(r.stages.back().hop.converged);
}

TEST(EndToEnd, CrossTrafficIncreasesBound) {
  const auto quiet = workload::make_figure2_scenario(kSpeed, false);
  const auto busy = workload::make_figure2_scenario(kSpeed, true);
  const AnalysisContext cq(quiet.network, quiet.flows);
  const AnalysisContext cb(busy.network, busy.flows);
  JitterMap jq = JitterMap::initial(cq);
  JitterMap jb = JitterMap::initial(cb);
  const FlowResult rq = analyze_flow_end_to_end(cq, jq, FlowId(0));
  const FlowResult rb = analyze_flow_end_to_end(cb, jb, FlowId(0));
  ASSERT_TRUE(rq.all_converged());
  ASSERT_TRUE(rb.all_converged());
  EXPECT_GT(rb.worst_response(), rq.worst_response());
}

}  // namespace
}  // namespace gmfnet::core
