// Integration tests for the Conclusions' multiprocessor switch extension:
// the analysis must use the reduced per-CPU CIRC, shrink bounds
// accordingly, and stay sound against the simulator running a partitioned
// switch.
#include <gtest/gtest.h>

#include "core/holistic.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "switchsim/switch_model.hpp"
#include "workload/scenario.hpp"

namespace gmfnet {
namespace {

/// Star with configurable CPU count and inflated task costs so CIRC terms
/// are visible next to the wire terms.
net::StarNetwork make_star(int processors) {
  net::SwitchParams p;
  p.croute = Time::us(54);
  p.csend = Time::us(20);
  p.processors = processors;
  return net::make_star_network(4, 100'000'000, p);
}

std::vector<gmf::Flow> bulk_flows(const net::StarNetwork& star) {
  return {gmf::make_sporadic_flow(
              "bulk", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
              Time::ms(20), Time::ms(20), 12'000 * 8, 1),
          gmf::make_sporadic_flow(
              "peer", net::Route({star.hosts[2], star.sw, star.hosts[1]}),
              Time::ms(20), Time::ms(20), 6'000 * 8, 1)};
}

TEST(Multiproc, CircShrinksWithProcessors) {
  const auto uni = make_star(1);
  const auto quad = make_star(4);
  core::AnalysisContext c1(uni.net, bulk_flows(uni));
  core::AnalysisContext c4(quad.net, bulk_flows(quad));
  // 4 interfaces over 4 CPUs -> 1 per CPU -> CIRC shrinks 4x.
  EXPECT_EQ(c1.circ(uni.sw), 4 * c4.circ(quad.sw));
}

TEST(Multiproc, BoundsShrinkWithProcessors) {
  const auto uni = make_star(1);
  const auto quad = make_star(4);
  core::AnalysisContext c1(uni.net, bulk_flows(uni));
  core::AnalysisContext c4(quad.net, bulk_flows(quad));
  const auto r1 = core::analyze_holistic(c1);
  const auto r4 = core::analyze_holistic(c4);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r4.converged);
  for (int f = 0; f < 2; ++f) {
    EXPECT_LT(r4.worst_response(core::FlowId(f)),
              r1.worst_response(core::FlowId(f)))
        << "flow " << f;
  }
}

TEST(Multiproc, NonDivisibleInterfaceCountUsesCeil) {
  // 4 interfaces over 3 CPUs: worst CPU serves ceil(4/3) = 2.
  const auto star = make_star(3);
  core::AnalysisContext ctx(star.net, bulk_flows(star));
  EXPECT_EQ(ctx.circ(star.sw),
            switchsim::circ(2, Time::us(54), Time::us(20)));
}

class MultiprocSim : public ::testing::TestWithParam<int> {};

TEST_P(MultiprocSim, SimulationStaysUnderAnalyticBound) {
  const int processors = GetParam();
  const auto star = make_star(processors);
  const auto flows = bulk_flows(star);
  core::AnalysisContext ctx(star.net, flows);
  const auto bound = core::analyze_holistic(ctx);
  ASSERT_TRUE(bound.converged);

  sim::SimOptions opts;
  opts.horizon = Time::sec(2);
  opts.seed = 42 + static_cast<std::uint64_t>(processors);
  sim::Simulator simulator(star.net, flows, opts);
  simulator.run();
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const net::FlowId id(static_cast<std::int32_t>(f));
    EXPECT_GT(simulator.stats(id).packets_completed, 0u);
    EXPECT_LE(simulator.stats(id).worst_response(),
              bound.flows[f].worst_response())
        << flows[f].name() << " with " << processors << " CPUs";
  }
}

INSTANTIATE_TEST_SUITE_P(Cpus, MultiprocSim, ::testing::Values(1, 2, 3, 4));

TEST(Multiproc, SimulatorBenefitsFromMoreCpus) {
  // Observed worst case should not get worse with more CPUs (same seed,
  // same arrivals; service only gets denser).
  auto run = [](int processors) {
    const auto star = make_star(processors);
    const auto flows = bulk_flows(star);
    sim::SimOptions opts;
    opts.horizon = Time::sec(1);
    opts.seed = 7;
    sim::Simulator simulator(star.net, flows, opts);
    simulator.run();
    return simulator.stats(net::FlowId(0)).worst_response();
  };
  EXPECT_LE(run(4), run(1));
}

}  // namespace
}  // namespace gmfnet
