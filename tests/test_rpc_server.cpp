// gmfnetd server contracts:
//
//  * Round-trip fidelity: over randomized multi-domain scenarios, ADMIT /
//    REMOVE / WHAT_IF_BATCH / STATS responses obtained through the client
//    library are bit-identical to the same calls on an in-process
//    AnalysisEngine driven through the same mutation sequence.
//
//  * Concurrency: many reader connections issuing WHAT_IF_BATCH probes
//    (lock-free snapshot reads on the daemon's reader pool) make progress
//    while a writer connection keeps admitting and removing — the soak the
//    TSan CI job runs.
//
//  * Robustness: engine-level failures come back as RemoteError with the
//    connection intact; a malformed frame drops only that connection; the
//    wire save/restore pair is the identity on the daemon's world;
//    SHUTDOWN winds the serve loop down.
//
//  * Hardening: a peer that dies mid-frame (clean close or RST) costs
//    only its own connection; a peer that stalls mid-frame is
//    disconnected within the io deadline while other connections keep
//    serving; idle connections are closed after their allowance; at the
//    connection cap the oldest-idle connection is shed; a truncated
//    server response fails the client instead of hanging it; drain
//    finishes in-flight work and leaves a restorable final checkpoint.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/priority.hpp"
#include "engine/analysis_engine.hpp"
#include "io/atomic_file.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/taskset_gen.hpp"

namespace gmfnet::rpc {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 100'000'000;

void expect_bit_identical(const core::HolisticResult& a,
                          const core::HolisticResult& b,
                          const std::string& where) {
  ASSERT_EQ(a.converged, b.converged) << where;
  ASSERT_EQ(a.schedulable, b.schedulable) << where;
  ASSERT_EQ(a.sweeps, b.sweeps) << where;
  EXPECT_TRUE(a.jitters == b.jitters) << where << ": jitter maps differ";
  ASSERT_EQ(a.flows.size(), b.flows.size()) << where;
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    ASSERT_EQ(a.flows[f].frames.size(), b.flows[f].frames.size()) << where;
    for (std::size_t k = 0; k < a.flows[f].frames.size(); ++k) {
      EXPECT_EQ(a.flows[f].frames[k].response, b.flows[f].frames[k].response)
          << where << ": flow " << f << " frame " << k;
      EXPECT_EQ(a.flows[f].frames[k].meets_deadline,
                b.flows[f].frames[k].meets_deadline)
          << where << ": flow " << f << " frame " << k;
    }
  }
}

/// A served engine on a fresh Unix socket, plus the serve thread.
class TestDaemon {
 public:
  explicit TestDaemon(const net::Network& network,
                      core::HolisticOptions opts = {}, ServerConfig cfg = {})
      : engine_(std::make_shared<engine::AnalysisEngine>(network, opts)) {
    static std::atomic<int> counter{0};
    cfg.unix_path = "/tmp/gmfnet_rpc_test_" + std::to_string(::getpid()) +
                    "_" + std::to_string(counter.fetch_add(1)) + ".sock";
    cfg.engine_opts = opts;
    server_ = std::make_unique<Server>(engine_, cfg);
    path_ = server_->unix_path();
    thread_ = std::thread([this] { server_->serve(); });
  }

  ~TestDaemon() {
    server_->request_stop();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] Client connect() const { return Client::connect_unix(path_); }
  [[nodiscard]] Server& server() { return *server_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::shared_ptr<engine::AnalysisEngine> engine_;
  std::unique_ptr<Server> server_;
  std::string path_;
  std::thread thread_;
};

/// Multi-cell star campus (several locality domains by construction).
struct Campus {
  net::Network net;
  std::vector<net::NodeId> hosts;  // cell-major
  std::vector<net::NodeId> switches;
};

Campus make_campus(int cells, int hosts_per_cell) {
  Campus c;
  for (int cell = 0; cell < cells; ++cell) {
    const net::NodeId sw = c.net.add_switch("sw" + std::to_string(cell));
    c.switches.push_back(sw);
    for (int h = 0; h < hosts_per_cell; ++h) {
      const net::NodeId host = c.net.add_endhost(
          "c" + std::to_string(cell) + "h" + std::to_string(h));
      c.net.add_duplex_link(host, sw, kSpeed);
      c.hosts.push_back(host);
    }
  }
  return c;
}

// --------------------------------------------------- round-trip fidelity --

class RpcRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RpcRoundTrip, MatchesInProcessEngineBitForBit) {
  const std::uint64_t seed = GetParam();
  Rng rng(0x5e7f00d5ull + seed * 0x9E3779B9ull);

  const int cells = 2 + static_cast<int>(seed % 3);
  const Campus campus = make_campus(cells, 4);

  workload::TasksetParams params;
  params.num_flows = 5 + static_cast<int>(rng.next_below(6));
  params.total_utilization = rng.uniform(0.2, 0.6);
  params.deadline_factor_lo = 2.0;
  params.deadline_factor_hi = 4.0;
  auto ts = workload::generate_taskset(campus.net, campus.hosts, params, rng);
  ASSERT_TRUE(ts.has_value());
  core::assign_priorities(ts->flows, core::PriorityScheme::kDeadlineMonotonic);

  TestDaemon daemon(campus.net);
  Client client = daemon.connect();
  engine::AnalysisEngine mirror(campus.net);  // the in-process reference

  const std::string where = "seed " + std::to_string(seed);

  // Gated admissions, remote vs in-process.
  for (const gmf::Flow& f : ts->flows) {
    const std::optional<core::HolisticResult> remote = client.admit(f);
    const std::optional<core::HolisticResult> local = mirror.try_admit(f);
    ASSERT_EQ(remote.has_value(), local.has_value()) << where;
    if (remote) expect_bit_identical(*remote, *local, where + " admit");
  }

  // A couple of removals (ids shift, domains split) — identical outcomes.
  const std::size_t removals = rng.next_below(3);
  for (std::size_t r = 0; r < removals && mirror.flow_count() > 2; ++r) {
    const auto idx =
        static_cast<std::size_t>(rng.next_below(mirror.flow_count()));
    EXPECT_EQ(client.remove(idx), mirror.remove_flow(idx)) << where;
  }
  EXPECT_FALSE(client.remove(1u << 20));  // out of range: false, not error

  // Batch what-ifs answered from the daemon's published snapshot must
  // match the same probes on the in-process engine.
  std::vector<gmf::Flow> cands(ts->flows.begin(),
                               ts->flows.begin() + 3);
  const std::vector<engine::WhatIfResult> remote_probes =
      client.what_if_batch(cands);
  const std::vector<engine::WhatIfResult> local_probes =
      mirror.evaluate_batch(cands);
  ASSERT_EQ(remote_probes.size(), local_probes.size()) << where;
  for (std::size_t i = 0; i < remote_probes.size(); ++i) {
    EXPECT_EQ(remote_probes[i].admissible, local_probes[i].admissible)
        << where;
    expect_bit_identical(remote_probes[i].result(), local_probes[i].result(),
                         where + " probe " + std::to_string(i));
  }

  // STATS mirrors the engine's introspection.
  const StatsResponse stats = client.stats();
  EXPECT_EQ(stats.flows, mirror.flow_count()) << where;
  EXPECT_EQ(stats.shards, mirror.shard_count()) << where;
}

INSTANTIATE_TEST_SUITE_P(Scenarios, RpcRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 6));

// ------------------------------------------------------- wire checkpoint --

TEST(RpcServer, SaveRestoreOverWireIsIdentity) {
  const auto star = net::make_star_network(8, kSpeed);
  TestDaemon daemon(star.net);
  Client client = daemon.connect();

  for (int n = 0; n < 5; ++n) {
    const auto a = static_cast<std::size_t>(n);
    ASSERT_TRUE(client.admit(workload::make_voip_flow(
        "c" + std::to_string(n),
        net::Route({star.hosts[a], star.sw, star.hosts[a + 1]}))));
  }

  const std::string blob = client.save_checkpoint();
  ASSERT_FALSE(blob.empty());

  // The wire blob is a PR 4 checkpoint stream: an in-process restore sees
  // the daemon's exact world.
  {
    std::istringstream is(blob);
    engine::AnalysisEngine restored = engine::AnalysisEngine::restore(is);
    EXPECT_EQ(restored.flow_count(), 5u);
  }

  // Mutate, then RESTORE the snapshot: the daemon is rolled back, and
  // re-saving yields the identical byte stream.
  ASSERT_TRUE(client.admit(workload::make_voip_flow(
      "extra", net::Route({star.hosts[6], star.sw, star.hosts[7]}))));
  EXPECT_EQ(client.stats().flows, 6u);
  EXPECT_EQ(client.restore(blob), 5u);
  EXPECT_EQ(client.stats().flows, 5u);
  EXPECT_EQ(client.save_checkpoint(), blob);

  // A corrupt blob is rejected server-side (RemoteError), world intact.
  std::string bad = blob;
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x4D);
  EXPECT_THROW((void)client.restore(bad), RemoteError);
  EXPECT_EQ(client.stats().flows, 5u);
}

// ------------------------------------------------------------ error paths --

TEST(RpcServer, EngineErrorsComeBackAsRemoteErrorAndConnectionSurvives) {
  const auto star = net::make_star_network(4, kSpeed);
  TestDaemon daemon(star.net);
  Client client = daemon.connect();

  // A flow whose route names a node the daemon's network does not have.
  const gmf::Flow bogus("bogus",
                        net::Route({net::NodeId(100), net::NodeId(101)}),
                        {{gmfnet::Time::ms(20), gmfnet::Time::ms(20),
                          gmfnet::Time::zero(), 1280}});
  EXPECT_THROW((void)client.admit(bogus), RemoteError);
  EXPECT_THROW((void)client.what_if(bogus), RemoteError);

  // Same connection keeps answering.
  EXPECT_EQ(client.stats().flows, 0u);
}

TEST(RpcServer, MalformedFrameDropsOnlyThatConnection) {
  const auto star = net::make_star_network(4, kSpeed);
  TestDaemon daemon(star.net);

  {
    Socket raw = rpc::connect_unix(daemon.path());
    raw.send_all("definitely not a gmfnet rpc frame header............");
    // The server rejects the stream: a best-effort ERROR frame saying
    // why, then the close.  Drain until EOF (or a reset, depending on
    // timing) with a deadline so a regression can't hang the test.
    raw.set_recv_timeout_ms(5'000);
    char byte = 0;
    try {
      while (raw.recv_exact(&byte, 1)) {
      }
    } catch (const TransportError&) {
      // ECONNRESET is an equally valid way to learn the connection died.
    }
  }

  // The daemon is unharmed: fresh connections serve normally.
  Client client = daemon.connect();
  EXPECT_EQ(client.stats().flows, 0u);
}

// ------------------------------------------------------------- lifecycle --

TEST(RpcServer, ShutdownStopsServeLoop) {
  const auto star = net::make_star_network(4, kSpeed);
  auto daemon = std::make_unique<TestDaemon>(star.net);
  Client client = daemon->connect();
  client.shutdown();
  daemon.reset();  // joins the serve thread — hangs here if SHUTDOWN broke

  // The socket file is gone; reconnecting fails.
  EXPECT_THROW((void)Client::connect_unix("/tmp/gone.gmfnet.sock"),
               TransportError);
}

TEST(RpcServer, ServesLoopbackTcpToo) {
  const auto star = net::make_star_network(4, kSpeed);
  auto eng = std::make_shared<engine::AnalysisEngine>(star.net);
  ServerConfig cfg;  // loopback TCP, ephemeral port
  Server server(eng, cfg);
  ASSERT_NE(server.tcp_port(), 0);
  std::thread serve([&server] { server.serve(); });

  Client client = Client::connect_tcp("127.0.0.1", server.tcp_port());
  ASSERT_TRUE(client.admit(workload::make_voip_flow(
      "c0", net::Route({star.hosts[0], star.sw, star.hosts[1]}))));
  EXPECT_EQ(client.stats().flows, 1u);
  client.shutdown();
  serve.join();
}

// -------------------------------------------------------------- hardening --

TEST(RpcServer, TransientAcceptErrnosAreClassified) {
  // The accept loop backs off (instead of dying) exactly on the errnos
  // that clear by themselves: fd exhaustion and backlog casualties.
  EXPECT_TRUE(is_transient_accept_error(EMFILE));
  EXPECT_TRUE(is_transient_accept_error(ENFILE));
  EXPECT_TRUE(is_transient_accept_error(ECONNABORTED));
  EXPECT_TRUE(is_transient_accept_error(EINTR));
  EXPECT_FALSE(is_transient_accept_error(EBADF));
  EXPECT_FALSE(is_transient_accept_error(EINVAL));
}

TEST(RpcServer, MidFramePeerDeathCostsOnlyThatConnection) {
  const auto star = net::make_star_network(4, kSpeed);
  TestDaemon daemon(star.net);
  Client witness = daemon.connect();
  EXPECT_EQ(witness.stats().flows, 0u);

  // Peer dies after the header magic, before the rest of the header.
  {
    Socket raw = rpc::connect_unix(daemon.path());
    raw.send_all(std::string_view(kMagic, sizeof kMagic));
  }
  // Peer dies mid-body: a well-formed header promising more bytes than
  // ever arrive.
  {
    Socket raw = rpc::connect_unix(daemon.path());
    const std::string frame =
        encode_request(Request{RestoreRequest{std::string(256, 'x')}});
    ASSERT_GT(frame.size(), kHeaderSize + 64);
    raw.send_all(std::string_view(frame).substr(0, kHeaderSize + 64));
  }
  // The witness connection (and the daemon) never noticed.
  EXPECT_EQ(witness.stats().flows, 0u);
  Client fresh = daemon.connect();
  EXPECT_EQ(fresh.stats().flows, 0u);
}

TEST(RpcServer, MidBodyResetOverTcpCostsOnlyThatConnection) {
  const auto star = net::make_star_network(4, kSpeed);
  auto eng = std::make_shared<engine::AnalysisEngine>(star.net);
  Server server(eng, ServerConfig{});  // loopback TCP, ephemeral port
  std::thread serve([&server] { server.serve(); });

  Client witness = Client::connect_tcp("127.0.0.1", server.tcp_port());
  EXPECT_EQ(witness.stats().flows, 0u);
  {
    // SO_LINGER{on, 0} makes close() send a real RST, not a FIN — the
    // "process killed mid-send" wire signature.
    Socket raw = rpc::connect_tcp("127.0.0.1", server.tcp_port());
    const std::string frame =
        encode_request(Request{RestoreRequest{std::string(256, 'x')}});
    raw.send_all(std::string_view(frame).substr(0, kHeaderSize + 64));
    struct linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ASSERT_EQ(::setsockopt(raw.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof lg),
              0);
  }
  EXPECT_EQ(witness.stats().flows, 0u);
  witness.shutdown();
  serve.join();
}

TEST(RpcServer, TruncatedServerResponseFailsTheClientInsteadOfHanging) {
  // An impostor daemon that answers every request with a third of a
  // header, then closes.  The client must surface TransportError promptly
  // — not hang waiting for bytes that will never come.
  const std::string path = "/tmp/gmfnet_rpc_impostor_" +
                           std::to_string(::getpid()) + ".sock";
  Listener fake = Listener::listen_unix(path);
  std::thread impostor([&fake] {
    Socket s = fake.accept(5'000);
    if (!s.valid()) return;
    s.set_recv_timeout_ms(2'000);
    std::string header(kHeaderSize, '\0');
    try {
      if (!s.recv_exact(header.data(), header.size())) return;
      s.send_all(std::string_view(kMagic, sizeof kMagic));
    } catch (const TransportError&) {
    }
  });

  ClientConfig cfg;
  cfg.request_timeout_ms = 3'000;
  Client client = Client::connect_unix(path, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.stats(), TransportError);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(elapsed, 5'000);
  impostor.join();
}

TEST(RpcServer, StalledPeerIsDisconnectedWithinDeadlineWhileOthersServe) {
  ServerConfig cfg;
  cfg.io_timeout_ms = 300;
  cfg.idle_timeout_ms = 10'000;
  const auto star = net::make_star_network(4, kSpeed);
  TestDaemon daemon(star.net, {}, cfg);

  // A slow-loris peer: starts a frame, then stalls forever.
  Socket stalled = rpc::connect_unix(daemon.path());
  stalled.send_all(std::string_view(kMagic, sizeof kMagic));
  const auto t0 = std::chrono::steady_clock::now();

  // Another connection keeps getting answers while the peer stalls.
  Client other = daemon.connect();
  EXPECT_EQ(other.stats().flows, 0u);

  // The daemon closes the stalled connection once io_timeout_ms expires:
  // drain the best-effort ERROR frame until EOF and check the clock.
  stalled.set_recv_timeout_ms(5'000);
  char byte = 0;
  try {
    while (stalled.recv_exact(&byte, 1)) {
    }
  } catch (const TransportError&) {
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(elapsed, 4'000);
  EXPECT_GE(daemon.server().timed_out_connections(), 1u);
  EXPECT_EQ(other.stats().flows, 0u);  // bystander still healthy
}

TEST(RpcServer, IdleConnectionIsClosedWithAnErrorFrame) {
  ServerConfig cfg;
  cfg.idle_timeout_ms = 200;
  const auto star = net::make_star_network(4, kSpeed);
  TestDaemon daemon(star.net, {}, cfg);

  Socket raw = rpc::connect_unix(daemon.path());
  raw.set_recv_timeout_ms(5'000);
  // Send nothing: after the idle allowance the server says why and closes.
  const std::optional<std::string> frame = recv_frame(raw);
  ASSERT_TRUE(frame.has_value());
  Response resp = decode_response(*frame);
  auto* err = std::get_if<ErrorResponse>(&resp);
  ASSERT_NE(err, nullptr);
  EXPECT_NE(err->message.find("idle"), std::string::npos) << err->message;
  EXPECT_FALSE(recv_frame(raw).has_value());  // then EOF
  EXPECT_GE(daemon.server().timed_out_connections(), 1u);
}

TEST(RpcServer, ConnectionCapShedsTheOldestIdleConnection) {
  ServerConfig cfg;
  cfg.max_connections = 2;
  const auto star = net::make_star_network(4, kSpeed);
  TestDaemon daemon(star.net, {}, cfg);

  Client oldest = daemon.connect();
  EXPECT_EQ(oldest.stats().flows, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Client middle = daemon.connect();
  EXPECT_EQ(middle.stats().flows, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The third connection arrives at the cap: the longest-idle one goes.
  Client newest = daemon.connect();
  EXPECT_EQ(newest.stats().flows, 0u);
  EXPECT_EQ(daemon.server().shed_connections(), 1u);

  EXPECT_THROW((void)oldest.stats(), TransportError);
  EXPECT_EQ(middle.stats().flows, 0u);
  EXPECT_EQ(newest.stats().flows, 0u);
}

TEST(RpcServer, DrainFinishesAndWritesRestorableFinalCheckpoint) {
  const std::string stamp = std::to_string(::getpid());
  const std::string ckpt = "/tmp/gmfnet_drain_" + stamp + ".ckpt";
  ::unlink(ckpt.c_str());
  ::unlink(io::AtomicFileWriter::previous_path(ckpt).c_str());

  const auto star = net::make_star_network(4, kSpeed);
  auto eng = std::make_shared<engine::AnalysisEngine>(star.net);
  ServerConfig cfg;
  cfg.unix_path = "/tmp/gmfnet_drain_" + stamp + ".sock";
  cfg.drain_timeout_ms = 1'500;
  cfg.checkpoint_path = ckpt;
  Server server(eng, cfg);
  std::thread serve([&server] { server.serve(); });

  Client client = Client::connect_unix(cfg.unix_path);
  ASSERT_TRUE(client.admit(workload::make_voip_flow(
      "resident", net::Route({star.hosts[0], star.sw, star.hosts[1]}))));
  // An extra idle connection must not pin the drain past its deadline:
  // its handler notices the wind-down within an idle-wait slice.
  Socket idle_conn = rpc::connect_unix(cfg.unix_path);

  const auto t0 = std::chrono::steady_clock::now();
  server.request_drain();
  serve.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(elapsed, 10'000);
  EXPECT_TRUE(server.drain_requested());

  std::ifstream in(ckpt, std::ios::binary);
  ASSERT_TRUE(in.good()) << "no final checkpoint at " << ckpt;
  engine::AnalysisEngine restored = engine::AnalysisEngine::restore(in);
  EXPECT_EQ(restored.flow_count(), 1u);
  ::unlink(ckpt.c_str());
  ::unlink(io::AtomicFileWriter::previous_path(ckpt).c_str());
}

TEST(RpcServer, AutoCheckpointsOnTheMutationCadence) {
  const std::string ckpt =
      "/tmp/gmfnet_autockpt_" + std::to_string(::getpid()) + ".ckpt";
  ::unlink(ckpt.c_str());
  ::unlink(io::AtomicFileWriter::previous_path(ckpt).c_str());

  ServerConfig cfg;
  cfg.checkpoint_path = ckpt;
  cfg.checkpoint_every = 2;
  const auto star = net::make_star_network(6, kSpeed);
  TestDaemon daemon(star.net, {}, cfg);
  Client client = daemon.connect();

  ASSERT_TRUE(client.admit(workload::make_voip_flow(
      "c0", net::Route({star.hosts[0], star.sw, star.hosts[1]}))));
  EXPECT_NE(::access(ckpt.c_str(), R_OK), 0) << "checkpointed too early";

  ASSERT_TRUE(client.admit(workload::make_voip_flow(
      "c1", net::Route({star.hosts[2], star.sw, star.hosts[3]}))));
  EXPECT_EQ(daemon.server().committed_mutations(), 2u);
  std::ifstream in(ckpt, std::ios::binary);
  ASSERT_TRUE(in.good()) << "no auto-checkpoint at " << ckpt;
  engine::AnalysisEngine restored = engine::AnalysisEngine::restore(in);
  EXPECT_EQ(restored.flow_count(), 2u);
  ::unlink(ckpt.c_str());
  ::unlink(io::AtomicFileWriter::previous_path(ckpt).c_str());
}

// ---------------------------------------------------- concurrency (soak) --

TEST(RpcServer, ConcurrentWhatIfReadersDontBlockTheWriter) {
  const int cells = 4;
  const Campus campus = make_campus(cells, 4);
  TestDaemon daemon(campus.net);

  // A warm resident world: one call per cell.
  {
    Client boot = daemon.connect();
    for (int cell = 0; cell < cells; ++cell) {
      const auto a = static_cast<std::size_t>(cell * 4);
      ASSERT_TRUE(boot.admit(workload::make_voip_flow(
          "resident" + std::to_string(cell),
          net::Route({campus.hosts[a], campus.switches[
                          static_cast<std::size_t>(cell)],
                      campus.hosts[a + 1]}))));
    }
  }

  // Probe candidates across all cells.
  std::vector<gmf::Flow> cands;
  for (int cell = 0; cell < cells; ++cell) {
    const auto a = static_cast<std::size_t>(cell * 4 + 2);
    cands.push_back(workload::make_voip_flow(
        "cand" + std::to_string(cell),
        net::Route({campus.hosts[a],
                    campus.switches[static_cast<std::size_t>(cell)],
                    campus.hosts[a + 1]})));
  }

  constexpr int kReaders = 4;
  constexpr int kWriterOps = 24;
  std::atomic<bool> writer_done{false};
  std::atomic<std::int64_t> probes{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      try {
        Client c = daemon.connect();
        while (!writer_done.load(std::memory_order_acquire)) {
          const std::vector<engine::WhatIfResult> results =
              c.what_if_batch(cands);
          if (results.size() != cands.size()) {
            failures.fetch_add(1);
            return;
          }
          probes.fetch_add(static_cast<std::int64_t>(results.size()));
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }

  // The writer keeps mutating the resident set while the readers probe.
  {
    Client writer = daemon.connect();
    for (int op = 0; op < kWriterOps; ++op) {
      const int cell = op % cells;
      const auto a = static_cast<std::size_t>(cell * 4);
      const std::optional<core::HolisticResult> admitted =
          writer.admit(workload::make_voip_flow(
              "churn" + std::to_string(op),
              net::Route({campus.hosts[a],
                          campus.switches[static_cast<std::size_t>(cell)],
                          campus.hosts[a + 1]})));
      ASSERT_TRUE(admitted.has_value()) << "op " << op;
      // Remove what we just added (it landed at the end).
      const StatsResponse s = writer.stats();
      ASSERT_TRUE(writer.remove(s.flows - 1)) << "op " << op;
    }
  }
  writer_done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(probes.load(), 0);

  // Quiesced world: back to the residents, and probe answers match an
  // in-process engine fed the same final state.
  Client check = daemon.connect();
  const StatsResponse s = check.stats();
  EXPECT_EQ(s.flows, static_cast<std::uint64_t>(cells));

  engine::AnalysisEngine mirror(campus.net);
  for (int cell = 0; cell < cells; ++cell) {
    const auto a = static_cast<std::size_t>(cell * 4);
    ASSERT_TRUE(mirror.try_admit(workload::make_voip_flow(
        "resident" + std::to_string(cell),
        net::Route({campus.hosts[a],
                    campus.switches[static_cast<std::size_t>(cell)],
                    campus.hosts[a + 1]}))));
  }
  const std::vector<engine::WhatIfResult> remote = check.what_if_batch(cands);
  const std::vector<engine::WhatIfResult> local = mirror.evaluate_batch(cands);
  ASSERT_EQ(remote.size(), local.size());
  for (std::size_t i = 0; i < remote.size(); ++i) {
    EXPECT_EQ(remote[i].admissible, local[i].admissible);
    expect_bit_identical(remote[i].result(), local[i].result(),
                         "post-soak probe " + std::to_string(i));
  }
}

}  // namespace
}  // namespace gmfnet::rpc
