#include "baseline/utilization.hpp"

#include <gtest/gtest.h>

#include "core/holistic.hpp"

#include "net/topology.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::baseline {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 10'000'000;

TEST(Utilization, EmptyFlowSetIsZero) {
  const auto star = net::make_star_network(4, kSpeed);
  const auto rep = measure_utilization(star.net, {});
  EXPECT_DOUBLE_EQ(rep.max_link_utilization, 0.0);
  EXPECT_DOUBLE_EQ(rep.max_ingress_utilization, 0.0);
  EXPECT_TRUE(utilization_test(star.net, {}));
}

TEST(Utilization, SingleFlowMatchesLinkParams) {
  const auto star = net::make_star_network(4, kSpeed);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "a", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(20), gmfnet::Time::ms(20), 4000 * 8)};
  core::AnalysisContext ctx(star.net, flows);
  const double expected =
      ctx.link_params(core::FlowId(0),
                      net::LinkRef(star.hosts[0], star.sw))
          .utilization();
  const auto rep = measure_utilization(star.net, flows);
  EXPECT_DOUBLE_EQ(rep.max_link_utilization, expected);
  EXPECT_GT(rep.max_ingress_utilization, 0.0);
}

TEST(Utilization, SharedLinkSumsFlows) {
  const auto star = net::make_star_network(4, kSpeed);
  auto mk = [&](const std::string& n, std::size_t from) {
    return gmf::make_sporadic_flow(
        n, net::Route({star.hosts[from], star.sw, star.hosts[3]}),
        gmfnet::Time::ms(20), gmfnet::Time::ms(20), 4000 * 8);
  };
  std::vector<gmf::Flow> one = {mk("a", 0)};
  std::vector<gmf::Flow> two = {mk("a", 0), mk("b", 1)};
  const auto rep1 = measure_utilization(star.net, one);
  const auto rep2 = measure_utilization(star.net, two);
  // Both flows converge on link(sw, host3).
  EXPECT_NEAR(rep2.max_link_utilization, 2 * rep1.max_link_utilization,
              1e-12);
}

TEST(Utilization, DetectsOverload) {
  const auto star = net::make_star_network(4, kSpeed);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "hog", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(2), gmfnet::Time::ms(2), 15000 * 8)};
  const auto rep = measure_utilization(star.net, flows);
  EXPECT_GT(rep.max_link_utilization, 1.0);
  EXPECT_FALSE(utilization_test(star.net, flows));
}

TEST(Utilization, CustomBound) {
  const auto star = net::make_star_network(4, kSpeed);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "a", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(20), gmfnet::Time::ms(20), 10000 * 8)};
  const auto rep = measure_utilization(star.net, flows);
  ASSERT_GT(rep.max_link_utilization, 0.3);  // ~0.42
  EXPECT_TRUE(utilization_test(star.net, flows, 1.0));
  EXPECT_FALSE(utilization_test(star.net, flows, 0.3));
}

TEST(Utilization, NecessaryButNotSufficient) {
  // A set that passes the utilization test can still blow a deadline: the
  // utilization baseline is not a guarantee (which is why the paper's
  // analysis exists).
  const auto star = net::make_star_network(4, kSpeed);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "tight", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(20), gmfnet::Time::ms(1), 1000 * 8)};
  EXPECT_TRUE(utilization_test(star.net, flows));
  core::AnalysisContext ctx(star.net, flows);
  EXPECT_FALSE(core::analyze_holistic(ctx).schedulable);
}

TEST(Utilization, Figure2ScenarioWithinBounds) {
  const auto s = workload::make_figure2_scenario(kSpeed, true);
  const auto rep = measure_utilization(s.network, s.flows);
  EXPECT_GT(rep.max_link_utilization, 0.0);
  EXPECT_LT(rep.max_link_utilization, 1.0);
  EXPECT_LT(rep.max_ingress_utilization, 1.0);
  EXPECT_TRUE(utilization_test(s.network, s.flows));
}

}  // namespace
}  // namespace gmfnet::baseline
