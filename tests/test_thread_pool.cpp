#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace gmfnet {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForSmallerThanPool) {
  ThreadPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 5 * (99 * 100 / 2));
}

TEST(ThreadPool, NestedParallelForFromWorkerThrows) {
  // The documented contract: parallel_for from a worker of the same pool
  // would wait on the very worker making the call.  It must throw instead
  // of deadlocking — before enqueuing anything.
  ThreadPool pool(2);
  std::atomic<int> rejected{0};
  std::atomic<int> ran{0};
  pool.parallel_for(4, [&](std::size_t) {
    ran.fetch_add(1);
    try {
      pool.parallel_for(2, [](std::size_t) {});
      ADD_FAILURE() << "nested parallel_for did not throw";
    } catch (const std::logic_error&) {
      rejected.fetch_add(1);
    }
  });
  EXPECT_EQ(ran.load(), 4);
  EXPECT_EQ(rejected.load(), 4);
  // The pool is still usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ConcurrentParallelForCallsAreSerialized) {
  // Two external threads hammering the same pool: the internal mutex must
  // serialize the calls so every index of every call runs exactly once.
  ThreadPool pool(4);
  constexpr std::size_t kPerCall = 500;
  constexpr int kCallsPerThread = 10;
  std::vector<std::atomic<int>> hits(kPerCall);
  std::atomic<long> total{0};
  auto hammer = [&] {
    for (int c = 0; c < kCallsPerThread; ++c) {
      std::vector<int> local(kPerCall, 0);
      pool.parallel_for(kPerCall, [&](std::size_t i) {
        hits[i].fetch_add(1);
        local[i] += 1;
        total.fetch_add(1);
      });
      // Within one call, each index ran exactly once.
      for (std::size_t i = 0; i < kPerCall; ++i) ASSERT_EQ(local[i], 1);
    }
  };
  std::thread a(hammer);
  std::thread b(hammer);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2L * kCallsPerThread * kPerCall);
  for (std::size_t i = 0; i < kPerCall; ++i) {
    EXPECT_EQ(hits[i].load(), 2 * kCallsPerThread) << "index " << i;
  }
}

TEST(ThreadPool, StandaloneParallelFor) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  // Single worker executes sequentially, so no synchronization needed.
  pool.parallel_for(10, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

}  // namespace
}  // namespace gmfnet
