#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gmfnet {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForSmallerThanPool) {
  ThreadPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 5 * (99 * 100 / 2));
}

TEST(ThreadPool, StandaloneParallelFor) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  // Single worker executes sequentially, so no synchronization needed.
  pool.parallel_for(10, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

}  // namespace
}  // namespace gmfnet
