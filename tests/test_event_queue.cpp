#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gmfnet::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::us(30), [&] { order.push_back(3); });
  q.schedule(Time::us(10), [&] { order.push_back(1); });
  q.schedule(Time::us(20), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsRunInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(Time::us(7), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunNextReturnsTimestamp) {
  EventQueue q;
  q.schedule(Time::ms(3), [] {});
  EXPECT_EQ(q.next_time(), Time::ms(3));
  EXPECT_EQ(q.run_next(), Time::ms(3));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<Time> fired;
  std::function<void(Time)> chain = [&](Time at) {
    fired.push_back(at);
    if (fired.size() < 4) {
      q.schedule(at + Time::us(5), [&chain, at] { chain(at + Time::us(5)); });
    }
  };
  q.schedule(Time::zero(), [&chain] { chain(Time::zero()); });
  while (!q.empty()) q.run_next();
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired.back(), Time::us(15));
}

TEST(EventQueue, SizeTracksPending) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  q.schedule(Time::us(1), [] {});
  q.schedule(Time::us(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.run_next();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PastEventsStillRunInOrder) {
  // Scheduling "in the past" is the caller's business; ordering holds.
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::us(10), [&] { order.push_back(1); });
  q.schedule(Time::us(5), [&] { order.push_back(0); });
  q.run_next();
  q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace gmfnet::sim
