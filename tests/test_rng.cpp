#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace gmfnet {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  // n == 1 always yields 0.
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformI64Inclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.uniform_i64(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(13);
  double mn = 1, mx = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    mn = std::min(mn, u);
    mx = std::max(mx, u);
  }
  EXPECT_LT(mn, 0.01);
  EXPECT_GT(mx, 0.99);
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(2.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(29);
  const std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.25);
}

TEST(Rng, UunifastSumsToTotal) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const auto u = rng.uunifast(8, 0.9);
    ASSERT_EQ(u.size(), 8u);
    double sum = 0;
    for (double x : u) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 0.9, 1e-9);
  }
}

TEST(Rng, UunifastSingleTask) {
  Rng rng(37);
  const auto u = rng.uunifast(1, 0.5);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 0.5);
}

TEST(Rng, UunifastEmpty) {
  Rng rng(41);
  EXPECT_TRUE(rng.uunifast(0, 0.5).empty());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(47);
  Rng child = a.split();
  // The child must not replay the parent's stream.
  Rng b(47);
  b.split();
  EXPECT_EQ(a.next_u64(), b.next_u64());  // parents stay in sync
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == a.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace gmfnet
