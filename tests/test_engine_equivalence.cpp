// The incremental engine's core contract, checked as a property over
// randomized scenarios: any sequence of add_flow / remove_flow followed by
// evaluate() produces a HolisticResult bit-identical to a from-scratch
// AnalysisContext + analyze_holistic run on the same flow set — same
// schedulability verdict, same worst responses, same fixed-point jitters.
//
// Soundness argument (see analysis_engine.hpp): both iterations drive the
// same monotone sweep operator to its unique least fixed point; the engine
// merely starts closer (warm start) and skips flows whose interference
// component is untouched.  This test is the executable version of that
// argument, across topology families, utilizations and mutation orders.
#include "engine/analysis_engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/priority.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"
#include "workload/taskset_gen.hpp"

namespace gmfnet::engine {
namespace {

/// Base options honoring the GMFNET_SOLVER CI toggle: the sanitizer jobs
/// re-run this suite with Anderson forced on, and incremental == cold must
/// keep holding bit for bit (acyclic workloads; see core::SolverOptions).
core::HolisticOptions env_opts() {
  core::HolisticOptions o;
  o.solver = core::solver_options_from_env();
  return o;
}

core::HolisticResult from_scratch(const net::Network& net,
                                  const std::vector<gmf::Flow>& flows) {
  const core::AnalysisContext ctx(net, flows);
  return core::analyze_holistic(ctx, env_opts());
}

/// The pre-envelope reference: same from-scratch run with the per-hop
/// analyses forced onto the naive per-interferer MX/NX path (no merged
/// LevelEnvelope, no cursor).  Pinning the engine against this closes the
/// loop: engine (envelope) == cold (envelope) == cold (naive).
core::HolisticResult from_scratch_naive(const net::Network& net,
                                        const std::vector<gmf::Flow>& flows) {
  const core::AnalysisContext ctx(net, flows);
  core::HolisticOptions opts = env_opts();
  opts.hop.use_envelope = false;
  return core::analyze_holistic(ctx, opts);
}

void expect_bit_identical(const core::HolisticResult& inc,
                          const core::HolisticResult& cold,
                          const std::string& where) {
  ASSERT_EQ(inc.converged, cold.converged) << where;
  ASSERT_EQ(inc.schedulable, cold.schedulable) << where;
  // Without a fixed point the per-sweep partial state is not comparable.
  if (!inc.converged) return;
  EXPECT_TRUE(inc.jitters == cold.jitters)
      << where << ": jitter fixed points differ";
  ASSERT_EQ(inc.flows.size(), cold.flows.size()) << where;
  for (std::size_t f = 0; f < inc.flows.size(); ++f) {
    const core::FlowId id(static_cast<std::int32_t>(f));
    EXPECT_EQ(inc.worst_response(id), cold.worst_response(id))
        << where << ": flow " << f;
    ASSERT_EQ(inc.flows[f].frames.size(), cold.flows[f].frames.size());
    for (std::size_t k = 0; k < inc.flows[f].frames.size(); ++k) {
      EXPECT_EQ(inc.flows[f].frames[k].response,
                cold.flows[f].frames[k].response)
          << where << ": flow " << f << " frame " << k;
      EXPECT_EQ(inc.flows[f].frames[k].meets_deadline,
                cold.flows[f].frames[k].meets_deadline)
          << where << ": flow " << f << " frame " << k;
    }
  }
}

class EngineEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineEquivalence, IncrementalMatchesFromScratch) {
  const std::uint64_t seed = GetParam();
  Rng rng(0x5eed5eed + seed * 0x9E3779B9ull);

  // Rotate topology families for scenario diversity.
  net::Network net;
  std::vector<net::NodeId> hosts;
  switch (seed % 3) {
    case 0: {
      const auto fig = net::make_figure1_network(100'000'000);
      net = fig.net;
      hosts = {fig.host0, fig.host1, fig.host2, fig.host3};
      break;
    }
    case 1: {
      const auto star = net::make_star_network(6, 100'000'000);
      net = star.net;
      hosts = star.hosts;
      break;
    }
    default: {
      const auto line = net::make_line_network(3, 100'000'000);
      net = line.net;
      hosts = line.leaf_hosts;
      hosts.push_back(line.src_host);
      hosts.push_back(line.dst_host);
      break;
    }
  }

  workload::TasksetParams params;
  params.num_flows = 3 + static_cast<int>(rng.next_below(5));  // 3..7
  params.total_utilization = rng.uniform(0.15, 0.55);
  params.deadline_factor_lo = 2.0;
  params.deadline_factor_hi = 4.0;
  auto ts = workload::generate_taskset(net, hosts, params, rng);
  ASSERT_TRUE(ts.has_value());
  core::assign_priorities(ts->flows, core::PriorityScheme::kDeadlineMonotonic);

  AnalysisEngine eng(net, env_opts());
  std::vector<gmf::Flow> mirror;  // ground truth for the cold rebuild

  // Incremental adds, compared to a cold rebuild at every step.
  for (std::size_t i = 0; i < ts->flows.size(); ++i) {
    eng.add_flow(ts->flows[i]);
    mirror.push_back(ts->flows[i]);
    expect_bit_identical(eng.evaluate(), from_scratch(net, mirror),
                         "seed " + std::to_string(seed) + " after add " +
                             std::to_string(i));
  }

  // Random removals (exercises the reset-dirty-component path).
  const std::size_t removals = 1 + rng.next_below(2);
  for (std::size_t r = 0; r < removals && !mirror.empty(); ++r) {
    const auto idx = static_cast<std::size_t>(rng.next_below(mirror.size()));
    ASSERT_TRUE(eng.remove_flow(idx));
    mirror.erase(mirror.begin() + static_cast<std::ptrdiff_t>(idx));
    if (mirror.empty()) break;
    expect_bit_identical(eng.evaluate(), from_scratch(net, mirror),
                         "seed " + std::to_string(seed) + " after remove " +
                             std::to_string(idx));
  }

  // Re-add after removal (warm start over a shrunk fixed point).
  eng.add_flow(ts->flows[0]);
  mirror.push_back(ts->flows[0]);
  expect_bit_identical(eng.evaluate(), from_scratch(net, mirror),
                       "seed " + std::to_string(seed) + " after re-add");

  // Envelope fast path vs the pre-envelope naive per-hop evaluation: the
  // cold runs above used the (default) envelope path; the naive reference
  // must agree bit-for-bit on the same final flow set.
  expect_bit_identical(from_scratch(net, mirror),
                       from_scratch_naive(net, mirror),
                       "seed " + std::to_string(seed) + " envelope parity");

  // Batch what-if probes match cold runs and commit nothing.
  std::vector<gmf::Flow> cands = {ts->flows.back(), ts->flows[0]};
  const auto batch = eng.evaluate_batch(cands);
  ASSERT_EQ(batch.size(), cands.size());
  EXPECT_EQ(eng.flow_count(), mirror.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    std::vector<gmf::Flow> with = mirror;
    with.push_back(cands[i]);
    expect_bit_identical(batch[i].result(), from_scratch(net, with),
                         "seed " + std::to_string(seed) + " batch candidate " +
                             std::to_string(i));
    expect_bit_identical(batch[i].result(), from_scratch_naive(net, with),
                         "seed " + std::to_string(seed) +
                             " batch candidate (naive parity) " +
                             std::to_string(i));
  }
}

// 100+ random scenarios (the acceptance floor for this property).
INSTANTIATE_TEST_SUITE_P(Scenarios, EngineEquivalence,
                         ::testing::Range<std::uint64_t>(0, 108));

}  // namespace
}  // namespace gmfnet::engine
