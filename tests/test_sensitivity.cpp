#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::core {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 10'000'000;

TEST(Sensitivity, SlackPositiveForComfortableSet) {
  const auto s = workload::make_figure2_scenario(kSpeed, true);
  const AnalysisContext ctx(s.network, s.flows);
  const auto slack = compute_slack(ctx);
  ASSERT_TRUE(slack.has_value());
  ASSERT_EQ(slack->size(), 3u);
  for (const FlowSlack& fs : *slack) {
    EXPECT_GT(fs.slack, gmfnet::Time::zero());
    EXPECT_GT(fs.bottleneck_response, gmfnet::Time::zero());
  }
  // The MPEG flow's critical frame is the I+P packet.
  EXPECT_EQ((*slack)[0].critical_frame, 0u);
}

TEST(Sensitivity, SlackNegativeOnDeadlineMiss) {
  const auto star = net::make_star_network(4, kSpeed);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "tight", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(20), gmfnet::Time::ms(1), 1000 * 8)};
  const AnalysisContext ctx(star.net, flows);
  const auto slack = compute_slack(ctx);
  ASSERT_TRUE(slack.has_value());
  EXPECT_LT((*slack)[0].slack, gmfnet::Time::zero());
}

TEST(Sensitivity, SlackNulloptOnDivergence) {
  const auto star = net::make_star_network(4, kSpeed);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "hog", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(2), gmfnet::Time::ms(2), 15000 * 8)};
  const AnalysisContext ctx(star.net, flows);
  EXPECT_FALSE(compute_slack(ctx).has_value());
}

TEST(Sensitivity, BottleneckIsEgressOnSlowLink) {
  // The egress stage carries MFT + transmission, which dwarfs CIRC terms
  // at 10 Mbit/s: the bottleneck must be a link stage for the big frame.
  const auto s = workload::make_figure2_scenario(kSpeed, false);
  const AnalysisContext ctx(s.network, s.flows);
  const auto slack = compute_slack(ctx);
  ASSERT_TRUE(slack.has_value());
  EXPECT_TRUE((*slack)[0].bottleneck.is_link());
}

TEST(Sensitivity, ScaleHelpersBehave) {
  const auto star = net::make_star_network(4, kSpeed);
  const net::Network doubled = scale_link_speeds(star.net, 2.0);
  EXPECT_EQ(doubled.linkspeed(star.hosts[0], star.sw), 2 * kSpeed);
  EXPECT_EQ(doubled.node_count(), star.net.node_count());

  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "a", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(20), gmfnet::Time::ms(20), 1000 * 8)};
  const auto scaled = scale_payloads(flows, 2.5);
  EXPECT_EQ(scaled[0].frame(0).payload_bits, 2500 * 8);
  // Clamps at the UDP maximum.
  const auto huge = scale_payloads(flows, 1e6);
  EXPECT_EQ(huge[0].frame(0).payload_bits, ethernet::kMaxUdpPayloadBytes * 8);
}

TEST(Sensitivity, PayloadScalingFindsTheEdge) {
  const auto star = net::make_star_network(4, kSpeed);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "a", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(20), gmfnet::Time::ms(20), 2000 * 8)};
  const ScalingResult r = max_payload_scaling(star.net, flows, 0.1, 16.0);
  ASSERT_GT(r.max_factor, 1.0);  // current set is comfortably schedulable
  ASSERT_LT(r.max_factor, 16.0);
  // The reported factor is schedulable; ~5% above it is not.
  AnalysisContext at(star.net, scale_payloads(flows, r.max_factor));
  EXPECT_TRUE(analyze_holistic(at).schedulable);
  AnalysisContext above(star.net,
                        scale_payloads(flows, r.max_factor * 1.05));
  EXPECT_FALSE(analyze_holistic(above).schedulable);
}

TEST(Sensitivity, PayloadScalingZeroWhenAlreadyInfeasible) {
  const auto star = net::make_star_network(4, kSpeed);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "hog", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(2), gmfnet::Time::ms(2), 15000 * 8)};
  EXPECT_DOUBLE_EQ(max_payload_scaling(star.net, flows).max_factor, 0.0);
}

TEST(Sensitivity, SpeedScalingRepairsOverload) {
  const auto star = net::make_star_network(4, kSpeed);
  // ~12 Mbit/s offered on 10 Mbit/s links, deadline = period: infeasible
  // now, feasible with moderately faster links.
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "big", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(20), gmfnet::Time::ms(20), 30000 * 8)};
  {
    AnalysisContext now(star.net, flows);
    ASSERT_FALSE(analyze_holistic(now).schedulable);
  }
  const auto factor = min_speed_scaling(star.net, flows);
  ASSERT_TRUE(factor.has_value());
  EXPECT_GT(*factor, 1.0);
  EXPECT_LT(*factor, 16.0);
  AnalysisContext fixed(scale_link_speeds(star.net, *factor), flows);
  EXPECT_TRUE(analyze_holistic(fixed).schedulable);
}

TEST(Sensitivity, SpeedScalingNulloptWhenHopeless) {
  const auto star = net::make_star_network(4, kSpeed);
  // Deadline of 50 us is below the CIRC floor (2 x 14.8 us + wire), which
  // no link speed-up within 16x can fix at 10 Mbit/s base (MFT at 160
  // Mbit/s is still ~77 us).
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "impossible", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(20), gmfnet::Time::us(50), 1000 * 8)};
  EXPECT_FALSE(min_speed_scaling(star.net, flows).has_value());
}

TEST(Sensitivity, SpeedScalingLoWhenAlreadyFine) {
  const auto star = net::make_star_network(4, 100'000'000);
  std::vector<gmf::Flow> flows = {workload::make_voip_flow(
      "v", net::Route({star.hosts[0], star.sw, star.hosts[1]}))};
  const auto factor = min_speed_scaling(star.net, flows, 0.25, 4.0);
  ASSERT_TRUE(factor.has_value());
  EXPECT_DOUBLE_EQ(*factor, 0.25);  // even quartered links suffice
}

}  // namespace
}  // namespace gmfnet::core
