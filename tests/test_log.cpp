#include "util/log.hpp"

#include <gtest/gtest.h>

namespace gmfnet {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn) {
  // The library must stay quiet below warnings unless asked.
  const LogLevelGuard guard;
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Log, SetAndGetRoundTrip) {
  const LogLevelGuard guard;
  for (const LogLevel l : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                           LogLevel::kError, LogLevel::kOff}) {
    set_log_level(l);
    EXPECT_EQ(log_level(), l);
  }
}

TEST(Log, EmittingBelowThresholdIsSafe) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Nothing to assert on stderr portably; this exercises the drop path and
  // the formatting path must not crash on varargs.
  GMFNET_LOG_DEBUG("dropped %d", 1);
  GMFNET_LOG_INFO("dropped %s", "too");
  GMFNET_LOG_WARN("dropped");
  GMFNET_LOG_ERROR("dropped %f", 2.0);
  SUCCEED();
}

TEST(Log, EmittingAboveThresholdIsSafe) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  GMFNET_LOG_DEBUG("test debug message %d", 42);
  GMFNET_LOG_ERROR("test error message");
  SUCCEED();
}

}  // namespace
}  // namespace gmfnet
