// Integration tests pinning every numeric anchor that survives in the paper
// text (see DESIGN.md §3).  These are the reproduction's ground truth.
#include <gtest/gtest.h>

#include "baseline/sporadic.hpp"
#include "core/admission.hpp"
#include "core/holistic.hpp"
#include "ethernet/framing.hpp"
#include "gmf/mpeg.hpp"
#include "switchsim/switch_model.hpp"
#include "workload/scenario.hpp"

namespace gmfnet {
namespace {

// --- §3.1 framing anchors ----------------------------------------------------

TEST(PaperExamples, EthernetFrameIs12304BitsMax) {
  EXPECT_EQ(ethernet::kMaxFrameWireBits, 12304);
  EXPECT_EQ(ethernet::kDataBitsPerFrame, 11840);
}

TEST(PaperExamples, MftOnWorkedExampleLink) {
  // linkspeed(0,4) = 10^7 bit/s -> MFT = 12304/10^7 s = 1.2304 ms.
  EXPECT_EQ(ethernet::max_frame_transmission_time(10'000'000),
            gmfnet::Time::us_f(1230.4));
}

// --- Figure 3 / eq (6) -------------------------------------------------------

TEST(PaperExamples, Figure3StreamTsum270ms) {
  const auto s = workload::make_figure2_scenario();
  EXPECT_EQ(s.flows[0].tsum(), gmfnet::Time::ms(270));
  EXPECT_EQ(s.flows[0].frame_count(), 9u);
}

// --- §3.3 CIRC anchors -------------------------------------------------------

TEST(PaperExamples, CircFourInterfaces14_8us) {
  EXPECT_EQ(switchsim::circ(4, gmfnet::Time::ns(2700), gmfnet::Time::ns(1000)),
            gmfnet::Time::us_f(14.8));
}

TEST(PaperExamples, Conclusions48PortSwitch) {
  const gmfnet::Time circ = switchsim::circ_multiproc(
      48, 16, gmfnet::Time::ns(2700), gmfnet::Time::ns(1000));
  EXPECT_EQ(circ, gmfnet::Time::us_f(11.1));
  EXPECT_TRUE(switchsim::sustains_linkspeed(circ, 1'000'000'000));
}

// --- Figures 1, 2, 6: the end-to-end example ---------------------------------

TEST(PaperExamples, Figure6EndToEndOnWorkedExample) {
  const auto s = workload::make_figure2_scenario(10'000'000, false);
  core::AnalysisContext ctx(s.network, s.flows);
  const auto r = core::analyze_holistic(ctx);
  ASSERT_TRUE(r.converged);
  ASSERT_TRUE(r.schedulable);

  // Structural checks on the per-frame pipeline: 5 stages, jitter grows,
  // response dominated by the I+P frame.
  const auto& frames = r.flows[0].frames;
  ASSERT_EQ(frames.size(), 9u);
  for (const auto& f : frames) {
    ASSERT_TRUE(f.converged);
    EXPECT_EQ(f.stages.size(), 5u);
  }
  EXPECT_EQ(r.flows[0].worst_response(), frames[0].response);

  // Sanity window for the bound of the I+P frame: at least its own wire
  // time on two links (2 x ~13.3 ms at 10 Mbit/s) plus overheads, and well
  // under the 100 ms deadline.
  EXPECT_GT(frames[0].response, gmfnet::Time::ms(26));
  EXPECT_LE(frames[0].response, gmfnet::Time::ms(100));
}

TEST(PaperExamples, WorkedExampleLinkParameters) {
  // Figure 4 reproduces per-frame C values on link(0,4); the exact byte
  // sizes are the documented substitution, but structure is pinned: the
  // I+P packet needs 12 Ethernet frames at the default 16 kB, B needs 2.
  const auto s = workload::make_figure2_scenario();
  core::AnalysisContext ctx(s.network, s.flows);
  const auto& p =
      ctx.link_params(core::FlowId(0), net::LinkRef(net::NodeId(0),
                                                    net::NodeId(4)));
  // C_i^k = transmission_time(nbits) exactly.
  for (std::size_t k = 0; k < 9; ++k) {
    EXPECT_EQ(p.c(k),
              ethernet::transmission_time(s.flows[0].nbits(k), 10'000'000));
  }
  EXPECT_EQ(p.nsum(), [&] {
    std::int64_t n = 0;
    for (std::size_t k = 0; k < 9; ++k) n += p.nframes(k);
    return n;
  }());
}

// --- §3.5: the admission controller ------------------------------------------

TEST(PaperExamples, HolisticIterationIsAnAdmissionController) {
  // The paper's closing claim: iterate Figure 6 with jitter feedback until
  // stable, compare against deadlines.  Adding flows can only be rejected,
  // never break admitted ones.
  const auto s = workload::make_figure2_scenario(10'000'000, true);
  core::AdmissionController ac(s.network);
  std::size_t admitted = 0;
  for (const auto& f : s.flows) {
    if (ac.try_admit(f).has_value()) ++admitted;
  }
  EXPECT_EQ(admitted, 3u);  // the worked scenario is schedulable
  const auto g = ac.current_guarantees();
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(g->schedulable);
}

// --- GMF vs sporadic (the paper's raison d'etre) ------------------------------

TEST(PaperExamples, GmfModelBeatsSporadicOnMpegTraffic) {
  // A video large enough that "every packet is I+P sized" (the sporadic
  // collapse) overloads the shared 10 Mbit/s link, while the true GMF cycle
  // fits comfortably.
  gmf::MpegSizes sizes;
  sizes.i_bits = 25'000 * 8;
  sizes.p_bits = 4'000 * 8;
  sizes.b_bits = 1'500 * 8;
  const auto s = workload::make_figure2_scenario(10'000'000, true, sizes);
  core::AnalysisContext ctx(s.network, s.flows);
  const auto gmf_res = core::analyze_holistic(ctx);
  EXPECT_TRUE(gmf_res.converged);
  EXPECT_TRUE(gmf_res.schedulable);
  // Sporadic collapse: every MPEG packet modelled as I+P-sized at the
  // 30 ms rate -> the same scenario is rejected.
  const auto spor = baseline::analyze_sporadic_baseline(s.network, s.flows);
  EXPECT_FALSE(spor.schedulable);
}

}  // namespace
}  // namespace gmfnet
