#include "net/route.hpp"

#include <gtest/gtest.h>

namespace gmfnet::net {
namespace {

/// host0 - sw1 - sw2 - host3, plus a spare host4 on sw1.
struct Fixture {
  Network net;
  NodeId h0, s1, s2, h3, h4;

  Fixture() {
    h0 = net.add_endhost("h0");
    s1 = net.add_switch("s1");
    s2 = net.add_switch("s2");
    h3 = net.add_endhost("h3");
    h4 = net.add_endhost("h4");
    net.add_duplex_link(h0, s1, 1'000'000);
    net.add_duplex_link(s1, s2, 1'000'000);
    net.add_duplex_link(s2, h3, 1'000'000);
    net.add_duplex_link(h4, s1, 1'000'000);
  }
};

TEST(Route, BasicAccessors) {
  Fixture f;
  const Route r({f.h0, f.s1, f.s2, f.h3});
  EXPECT_EQ(r.node_count(), 4u);
  EXPECT_EQ(r.hop_count(), 3u);
  EXPECT_EQ(r.source(), f.h0);
  EXPECT_EQ(r.destination(), f.h3);
  EXPECT_EQ(r.node_at(1), f.s1);
}

TEST(Route, SuccAndPrec) {
  Fixture f;
  const Route r({f.h0, f.s1, f.s2, f.h3});
  EXPECT_EQ(r.succ(f.h0), f.s1);
  EXPECT_EQ(r.succ(f.s2), f.h3);
  EXPECT_FALSE(r.succ(f.h3).valid());   // destination has no successor
  EXPECT_FALSE(r.succ(f.h4).valid());   // not on route
  EXPECT_EQ(r.prec(f.s1), f.h0);
  EXPECT_EQ(r.prec(f.h3), f.s2);
  EXPECT_FALSE(r.prec(f.h0).valid());   // source has no predecessor
}

TEST(Route, ContainsAndUsesLink) {
  Fixture f;
  const Route r({f.h0, f.s1, f.s2, f.h3});
  EXPECT_TRUE(r.contains(f.s1));
  EXPECT_FALSE(r.contains(f.h4));
  EXPECT_TRUE(r.uses_link(f.s1, f.s2));
  EXPECT_FALSE(r.uses_link(f.s2, f.s1));  // directed
  EXPECT_FALSE(r.uses_link(f.h0, f.s2));  // not consecutive
}

TEST(Route, LinksInOrder) {
  Fixture f;
  const Route r({f.h0, f.s1, f.s2, f.h3});
  const auto links = r.links();
  ASSERT_EQ(links.size(), 3u);
  EXPECT_EQ(links[0], LinkRef(f.h0, f.s1));
  EXPECT_EQ(links[2], LinkRef(f.s2, f.h3));
}

TEST(Route, Intermediates) {
  Fixture f;
  const Route r({f.h0, f.s1, f.s2, f.h3});
  const auto mid = r.intermediates();
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0], f.s1);
  EXPECT_EQ(mid[1], f.s2);
  const Route direct({f.h0, f.s1});
  EXPECT_TRUE(direct.intermediates().empty());
}

TEST(Route, ValidateAcceptsWellFormed) {
  Fixture f;
  EXPECT_NO_THROW(Route({f.h0, f.s1, f.s2, f.h3}).validate(f.net));
}

TEST(Route, ValidateRejectsTooShort) {
  Fixture f;
  EXPECT_THROW(Route({f.h0}).validate(f.net), std::logic_error);
  EXPECT_THROW(Route(std::vector<NodeId>{}).validate(f.net),
               std::logic_error);
}

TEST(Route, ValidateRejectsRepeatedNode) {
  Fixture f;
  // s1 appears twice; even though links exist, loops are forbidden.
  EXPECT_THROW(Route({f.h0, f.s1, f.s2, f.s1}).validate(f.net),
               std::logic_error);
}

TEST(Route, ValidateRejectsMissingLink) {
  Fixture f;
  EXPECT_THROW(Route({f.h0, f.s2, f.h3}).validate(f.net), std::logic_error);
}

TEST(Route, ValidateRejectsSwitchEndpoint) {
  Fixture f;
  EXPECT_THROW(Route({f.s1, f.s2, f.h3}).validate(f.net), std::logic_error);
}

TEST(Route, ValidateRejectsHostIntermediate) {
  Fixture f;
  // h4 - s1 - h0 is host->switch->host, fine; but h0 as intermediate in a
  // longer route is not.
  f.net.add_duplex_link(f.h0, f.s2, 1'000'000);
  EXPECT_THROW(Route({f.h4, f.s1, f.h0, f.s2, f.h3}).validate(f.net),
               std::logic_error);
}

TEST(Route, RouterEndpointsAllowed) {
  Network net;
  const NodeId r = net.add_router("r");
  const NodeId s = net.add_switch("s");
  const NodeId h = net.add_endhost("h");
  net.add_duplex_link(r, s, 1000);
  net.add_duplex_link(s, h, 1000);
  EXPECT_NO_THROW(Route({r, s, h}).validate(net));
  EXPECT_NO_THROW(Route({h, s, r}).validate(net));
}

}  // namespace
}  // namespace gmfnet::net
