// Tests of the request-bound functions MXS/MX/NXS/NX (eqs 10-13), including
// property sweeps against a brute-force reference implementation.
#include "gmf/demand.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace gmfnet::gmf {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 10'000'000;

Flow make_flow(std::vector<FrameSpec> frames) {
  const net::Figure1Network f = net::make_figure1_network();
  return Flow("t", net::Route({f.host0, f.sw4, f.sw6, f.host3}),
              std::move(frames));
}

std::vector<FrameSpec> frames_abc() {
  std::vector<FrameSpec> fr(3);
  fr[0] = {gmfnet::Time::ms(30), gmfnet::Time::ms(300), gmfnet::Time::zero(),
           12'000 * 8};
  fr[1] = {gmfnet::Time::ms(20), gmfnet::Time::ms(300), gmfnet::Time::zero(),
           1'000 * 8};
  fr[2] = {gmfnet::Time::ms(10), gmfnet::Time::ms(300), gmfnet::Time::zero(),
           4'000 * 8};
  return fr;
}

/// Brute-force eq (10)/(12) under the right-closed semantics of DESIGN.md
/// correction #7: max over all windows whose span is <= t, no cap.
gmfnet::Time brute_mxs(const FlowLinkParams& p, gmfnet::Time t) {
  if (t < gmfnet::Time::zero()) return gmfnet::Time::zero();
  gmfnet::Time best = gmfnet::Time::zero();
  for (std::size_t k1 = 0; k1 < p.frame_count(); ++k1) {
    for (std::size_t k2 = 1; k2 <= p.frame_count(); ++k2) {
      if (p.tsum_window(k1, k2) <= t) {
        best = gmfnet::max(best, p.csum_window(k1, k2));
      }
    }
  }
  return best;
}

std::int64_t brute_nxs(const FlowLinkParams& p, gmfnet::Time t) {
  if (t < gmfnet::Time::zero()) return 0;
  std::int64_t best = 0;
  for (std::size_t k1 = 0; k1 < p.frame_count(); ++k1) {
    for (std::size_t k2 = 1; k2 <= p.frame_count(); ++k2) {
      if (p.tsum_window(k1, k2) <= t) {
        best = std::max(best, p.nsum_window(k1, k2));
      }
    }
  }
  return best;
}

gmfnet::Time max_c(const FlowLinkParams& p) {
  gmfnet::Time cmax = gmfnet::Time::zero();
  for (std::size_t k = 0; k < p.frame_count(); ++k) {
    cmax = gmfnet::max(cmax, p.c(k));
  }
  return cmax;
}

std::int64_t max_n(const FlowLinkParams& p) {
  std::int64_t nmax = 0;
  for (std::size_t k = 0; k < p.frame_count(); ++k) {
    nmax = std::max(nmax, p.nframes(k));
  }
  return nmax;
}

TEST(Demand, NegativeWindowsAreZero) {
  const Flow flow = make_flow(frames_abc());
  const FlowLinkParams p(flow, kSpeed);
  const DemandCurve d(p);
  EXPECT_EQ(d.mx(gmfnet::Time(-5)), gmfnet::Time::zero());
  EXPECT_EQ(d.nx(gmfnet::Time(-5)), 0);
  EXPECT_EQ(d.mxs(gmfnet::Time(-1)), gmfnet::Time::zero());
  EXPECT_EQ(d.nxs(gmfnet::Time(-1)), 0);
}

TEST(Demand, ZeroWindowIsCriticalInstantRelease) {
  // Right-closed windows: a window of length 0 still contains one release
  // of the largest frame.
  const Flow flow = make_flow(frames_abc());
  const FlowLinkParams p(flow, kSpeed);
  const DemandCurve d(p);
  EXPECT_EQ(d.mx(gmfnet::Time::zero()), max_c(p));
  EXPECT_EQ(d.nx(gmfnet::Time::zero()), max_n(p));
}

TEST(Demand, TinyWindowSeesLargestSingleFrame) {
  const Flow flow = make_flow(frames_abc());
  const FlowLinkParams p(flow, kSpeed);
  const DemandCurve d(p);
  const gmfnet::Time probe = gmfnet::Time::ms(5);  // < all separations
  EXPECT_EQ(d.mxs(probe), max_c(p));
  EXPECT_EQ(d.nxs(probe), max_n(p));
}

TEST(Demand, FullCycleWindow) {
  const Flow flow = make_flow(frames_abc());
  const FlowLinkParams p(flow, kSpeed);
  const DemandCurve d(p);
  // A right-closed window of exactly TSUM holds a full cycle plus one more
  // release at the far edge.
  EXPECT_EQ(d.mx(p.tsum()), p.csum() + max_c(p));
  EXPECT_EQ(d.nx(p.tsum()), p.nsum() + max_n(p));
  EXPECT_EQ(d.mx(2 * p.tsum()), 2 * p.csum() + max_c(p));
  // Just under a full cycle never exceeds one cycle's demand.
  EXPECT_LE(d.mx(p.tsum() - gmfnet::Time(1)), p.csum());
}

TEST(Demand, AccessorsMirrorParams) {
  const Flow flow = make_flow(frames_abc());
  const FlowLinkParams p(flow, kSpeed);
  const DemandCurve d(p);
  EXPECT_EQ(d.tsum(), p.tsum());
  EXPECT_EQ(d.csum(), p.csum());
  EXPECT_EQ(d.nsum(), p.nsum());
}

TEST(Demand, SporadicSpecialCaseMatchesClassicRbf) {
  // n=1: MX(t) must equal (floor(t/T)+1)*C — the classic right-closed
  // request bound of static-priority response-time analysis.
  std::vector<FrameSpec> fr(1);
  fr[0] = {gmfnet::Time::ms(20), gmfnet::Time::ms(100), gmfnet::Time::zero(),
           1'000 * 8};
  const Flow flow = make_flow(fr);
  const FlowLinkParams p(flow, kSpeed);
  const DemandCurve d(p);
  const gmfnet::Time period = gmfnet::Time::ms(20);
  for (gmfnet::Time t :
       {gmfnet::Time::zero(), gmfnet::Time::us(1), gmfnet::Time::ms(1),
        gmfnet::Time::ms(20), gmfnet::Time::ms(21), gmfnet::Time::ms(40),
        gmfnet::Time::ms(39)}) {
    const auto arrivals = t.floor_div(period) + 1;
    EXPECT_EQ(d.mx(t).ps(), arrivals * p.c(0).ps()) << t.str();
    EXPECT_EQ(d.nx(t), arrivals * p.nframes(0)) << t.str();
  }
}

// -- property sweeps against brute force -------------------------------------

class DemandProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DemandProperty, MatchesBruteForceWithinCycle) {
  Rng rng(GetParam());
  // Random GMF cycle with 1..6 frames.
  const auto n = static_cast<std::size_t>(rng.uniform_i64(1, 6));
  std::vector<FrameSpec> fr(n);
  for (auto& s : fr) {
    s.min_separation = gmfnet::Time::us(rng.uniform_i64(500, 40'000));
    s.deadline = gmfnet::Time::ms(500);
    s.jitter = gmfnet::Time::zero();
    s.payload_bits = rng.uniform_i64(1, 20'000) * 8;
  }
  const Flow flow = make_flow(fr);
  const FlowLinkParams p(flow, kSpeed);
  const DemandCurve d(p);

  for (int probe = 0; probe < 200; ++probe) {
    const gmfnet::Time t(
        rng.uniform_i64(0, p.tsum().ps() - 1));
    EXPECT_EQ(d.mxs(t), brute_mxs(p, t)) << "t=" << t.str();
    EXPECT_EQ(d.nxs(t), brute_nxs(p, t)) << "t=" << t.str();
  }
}

TEST_P(DemandProperty, MxIsMonotoneAndSubadditiveAcrossCycles) {
  Rng rng(GetParam() ^ 0xabcdef);
  const auto n = static_cast<std::size_t>(rng.uniform_i64(1, 5));
  std::vector<FrameSpec> fr(n);
  for (auto& s : fr) {
    s.min_separation = gmfnet::Time::us(rng.uniform_i64(1'000, 30'000));
    s.deadline = gmfnet::Time::ms(500);
    s.payload_bits = rng.uniform_i64(1, 15'000) * 8;
  }
  const Flow flow = make_flow(fr);
  const FlowLinkParams p(flow, kSpeed);
  const DemandCurve d(p);

  gmfnet::Time prev_mx = gmfnet::Time::zero();
  std::int64_t prev_nx = 0;
  const gmfnet::Time step = gmfnet::Time(p.tsum().ps() / 37 + 1);
  for (gmfnet::Time t = gmfnet::Time::zero(); t < 3 * p.tsum(); t += step) {
    const gmfnet::Time mx = d.mx(t);
    const std::int64_t nx = d.nx(t);
    // Monotone non-decreasing.
    EXPECT_GE(mx, prev_mx);
    EXPECT_GE(nx, prev_nx);
    // Never exceeds one cycle's demand per cycle plus one extra cycle
    // (coarse sanity bound: MX(t) <= (t/TSUM + 1) * CSUM).
    const auto cycles = t.floor_div(p.tsum()) + 1;
    EXPECT_LE(mx, cycles * p.csum());
    EXPECT_LE(nx, cycles * p.nsum());
    prev_mx = mx;
    prev_nx = nx;
  }
}

TEST_P(DemandProperty, CycleShiftIdentity) {
  // Exact identity: MX(t + TSUM) = MX(t) + CSUM and NX(t + TSUM) =
  // NX(t) + NSUM for every t >= 0 — the hyperperiod decomposition of
  // eqs (11)/(13).
  Rng rng(GetParam() * 7919);
  const auto n = static_cast<std::size_t>(rng.uniform_i64(1, 6));
  std::vector<FrameSpec> fr(n);
  for (auto& s : fr) {
    s.min_separation = gmfnet::Time::us(rng.uniform_i64(500, 25'000));
    s.deadline = gmfnet::Time::ms(500);
    s.payload_bits = rng.uniform_i64(1, 12'000) * 8;
  }
  const Flow flow = make_flow(fr);
  const FlowLinkParams p(flow, kSpeed);
  const DemandCurve d(p);
  for (int probe = 0; probe < 100; ++probe) {
    const gmfnet::Time t(rng.uniform_i64(0, 3 * p.tsum().ps()));
    EXPECT_EQ(d.mx(t + p.tsum()), d.mx(t) + p.csum()) << t.str();
    EXPECT_EQ(d.nx(t + p.tsum()), d.nx(t) + p.nsum()) << t.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DemandProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u));

}  // namespace
}  // namespace gmfnet::gmf
