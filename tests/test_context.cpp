#include "core/context.hpp"

#include <gtest/gtest.h>

#include "gmf/mpeg.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::core {
namespace {

workload::Scenario scenario() {
  return workload::make_figure2_scenario(10'000'000,
                                         /*with_cross_traffic=*/true);
}

TEST(StageKey, OrderingAndFactories) {
  const StageKey a = StageKey::link(NodeId(1), NodeId(2));
  const StageKey b = StageKey::ingress(NodeId(2));
  EXPECT_TRUE(a.is_link());
  EXPECT_FALSE(b.is_link());
  EXPECT_EQ(a.as_link(), LinkRef(NodeId(1), NodeId(2)));
  EXPECT_NE(a, b);
  EXPECT_EQ(a, StageKey::link(LinkRef(NodeId(1), NodeId(2))));
}

TEST(Context, ValidatesOnConstruction) {
  auto s = scenario();
  EXPECT_NO_THROW(AnalysisContext(s.network, s.flows));

  // A flow with a broken route must be rejected.
  auto bad = scenario();
  net::Network net2 = bad.network;
  std::vector<gmf::Flow> flows2 = bad.flows;
  flows2[0] = gmf::Flow("broken",
                        net::Route({NodeId(0), NodeId(5), NodeId(3)}),
                        {bad.flows[0].frame(0)});
  EXPECT_THROW(AnalysisContext(net2, flows2), std::logic_error);
}

TEST(Context, FlowsOnLink) {
  auto s = scenario();
  const AnalysisContext ctx(s.network, s.flows);
  // Flows 0 (0->4->6->3) and 1 (1->4->6->3) share link(4,6); flow 2
  // (2->5->6->3) does not.
  const auto& on46 = ctx.flows_on_link(LinkRef(NodeId(4), NodeId(6)));
  ASSERT_EQ(on46.size(), 2u);
  EXPECT_EQ(on46[0], FlowId(0));
  EXPECT_EQ(on46[1], FlowId(1));
  // All three converge on link(6,3).
  EXPECT_EQ(ctx.flows_on_link(LinkRef(NodeId(6), NodeId(3))).size(), 3u);
  // Unused links carry nothing.
  EXPECT_TRUE(ctx.flows_on_link(LinkRef(NodeId(6), NodeId(7))).empty());
}

TEST(Context, HepAndLpRespectPriorities) {
  auto s = scenario();
  // Priorities in the scenario: flow0=1, flow1=0, flow2=2.
  const AnalysisContext ctx(s.network, s.flows);
  const LinkRef l63(NodeId(6), NodeId(3));
  // For flow 1 (lowest prio), both others are hep on the shared link.
  EXPECT_EQ(ctx.hep(FlowId(1), l63).size(), 2u);
  EXPECT_TRUE(ctx.lp(FlowId(1), l63).empty());
  // For flow 2 (highest), nobody is hep.
  EXPECT_TRUE(ctx.hep(FlowId(2), l63).empty());
  EXPECT_EQ(ctx.lp(FlowId(2), l63).size(), 2u);
  // hep never contains the flow itself.
  for (const FlowId j : ctx.hep(FlowId(0), l63)) EXPECT_NE(j, FlowId(0));
}

TEST(Context, EqualPriorityCountsAsHep) {
  auto s = scenario();
  for (auto& f : s.flows) f.set_priority(3);
  const AnalysisContext ctx(s.network, s.flows);
  const LinkRef l63(NodeId(6), NodeId(3));
  EXPECT_EQ(ctx.hep(FlowId(0), l63).size(), 2u);  // "higher or equal"
  EXPECT_TRUE(ctx.lp(FlowId(0), l63).empty());
}

TEST(Context, LinkParamsAndDemandPrecomputed) {
  auto s = scenario();
  const AnalysisContext ctx(s.network, s.flows);
  const LinkRef first(NodeId(0), NodeId(4));
  const auto& p = ctx.link_params(FlowId(0), first);
  EXPECT_EQ(p.frame_count(), 9u);  // Figure-3 MPEG cycle
  const auto& d = ctx.demand(FlowId(0), first);
  EXPECT_EQ(d.csum(), p.csum());
  // Asking for a link the flow does not traverse throws.
  EXPECT_THROW((void)ctx.link_params(FlowId(2), first), std::out_of_range);
  EXPECT_THROW((void)ctx.demand(FlowId(2), first), std::out_of_range);
}

TEST(Context, CircPrecomputedForSwitches) {
  auto s = scenario();
  const AnalysisContext ctx(s.network, s.flows);
  // Figure-1 degrees: switch 4 and 6 have 4 interfaces, switch 5 has 3.
  EXPECT_EQ(ctx.circ(NodeId(4)), gmfnet::Time::us_f(14.8));
  EXPECT_EQ(ctx.circ(NodeId(5)), gmfnet::Time::us_f(11.1));
  EXPECT_EQ(ctx.circ(NodeId(6)), gmfnet::Time::us_f(14.8));
  EXPECT_EQ(ctx.circ(NodeId(0)), gmfnet::Time::zero());  // not a switch
}

TEST(Context, StageSequencePerFigure6) {
  auto s = scenario();
  const AnalysisContext ctx(s.network, s.flows);
  const auto& st = ctx.stages(FlowId(0));  // route 0 -> 4 -> 6 -> 3
  ASSERT_EQ(st.size(), 5u);
  EXPECT_EQ(st[0], StageKey::link(NodeId(0), NodeId(4)));
  EXPECT_EQ(st[1], StageKey::ingress(NodeId(4)));
  EXPECT_EQ(st[2], StageKey::link(NodeId(4), NodeId(6)));
  EXPECT_EQ(st[3], StageKey::ingress(NodeId(6)));
  EXPECT_EQ(st[4], StageKey::link(NodeId(6), NodeId(3)));
}

TEST(Context, UtilizationQueries) {
  auto s = scenario();
  const AnalysisContext ctx(s.network, s.flows);
  const LinkRef l63(NodeId(6), NodeId(3));
  double u = 0;
  for (const FlowId j : ctx.flows_on_link(l63)) {
    u += ctx.link_params(j, l63).utilization();
  }
  EXPECT_DOUBLE_EQ(ctx.link_utilization(l63), u);
  EXPECT_GT(ctx.ingress_utilization(LinkRef(NodeId(0), NodeId(4))), 0.0);
  // Level utilization for the top-priority flow counts only itself.
  EXPECT_DOUBLE_EQ(ctx.egress_level_utilization(FlowId(2), l63),
                   ctx.link_params(FlowId(2), l63).utilization());
}

TEST(JitterMap, DefaultsToZeroAndStoresValues) {
  JitterMap m;
  const StageKey st = StageKey::ingress(NodeId(4));
  EXPECT_EQ(m.jitter(FlowId(0), st, 3), gmfnet::Time::zero());
  EXPECT_EQ(m.max_jitter(FlowId(0), st), gmfnet::Time::zero());
  m.set_jitter(FlowId(0), st, 3, gmfnet::Time::ms(2));
  EXPECT_EQ(m.jitter(FlowId(0), st, 3), gmfnet::Time::ms(2));
  EXPECT_EQ(m.jitter(FlowId(0), st, 0), gmfnet::Time::zero());
  EXPECT_EQ(m.max_jitter(FlowId(0), st), gmfnet::Time::ms(2));
}

TEST(JitterMap, InitialCarriesSourceJitter) {
  auto s = scenario();
  const AnalysisContext ctx(s.network, s.flows);
  const JitterMap m = JitterMap::initial(ctx);
  const StageKey first = ctx.stages(FlowId(0)).front();
  // Figure-3 flow: 1 ms source jitter on every frame.
  EXPECT_EQ(m.jitter(FlowId(0), first, 0), gmfnet::Time::ms(1));
  EXPECT_EQ(m.max_jitter(FlowId(0), first), gmfnet::Time::ms(1));
  // Downstream stages start at zero.
  EXPECT_EQ(m.max_jitter(FlowId(0), ctx.stages(FlowId(0))[2]),
            gmfnet::Time::zero());
}

TEST(Context, IncrementalAddMatchesMonolithic) {
  auto s = scenario();
  const AnalysisContext mono(s.network, s.flows);
  AnalysisContext inc(s.network);
  EXPECT_EQ(inc.flow_count(), 0u);
  for (std::size_t f = 0; f < s.flows.size(); ++f) {
    const FlowId id = inc.add_flow(s.flows[f]);
    EXPECT_EQ(id, FlowId(static_cast<std::int32_t>(f)));
  }
  ASSERT_EQ(inc.flow_count(), mono.flow_count());
  const LinkRef l63(NodeId(6), NodeId(3));
  EXPECT_EQ(inc.flows_on_link(l63), mono.flows_on_link(l63));
  EXPECT_DOUBLE_EQ(inc.link_utilization(l63), mono.link_utilization(l63));
  EXPECT_DOUBLE_EQ(inc.ingress_utilization(l63),
                   mono.ingress_utilization(l63));
  for (std::size_t f = 0; f < s.flows.size(); ++f) {
    const FlowId id(static_cast<std::int32_t>(f));
    EXPECT_EQ(inc.stages(id), mono.stages(id));
    EXPECT_EQ(inc.route_links(id), mono.route_links(id));
  }
}

TEST(Context, BulkAddMatchesSequentialAndFailsAtomically) {
  auto s = scenario();
  const AnalysisContext mono(s.network, s.flows);  // ctor = add_flows
  AnalysisContext seq(s.network);
  for (const gmf::Flow& f : s.flows) seq.add_flow(f);
  const LinkRef l63(NodeId(6), NodeId(3));
  EXPECT_EQ(mono.flows_on_link(l63), seq.flows_on_link(l63));
  EXPECT_DOUBLE_EQ(mono.link_utilization(l63), seq.link_utilization(l63));
  EXPECT_DOUBLE_EQ(mono.ingress_utilization(l63),
                   seq.ingress_utilization(l63));

  // A batch with an invalid member throws before any mutation: the context
  // keeps serving consistent aggregates for its existing flows.
  AnalysisContext inc(s.network);
  inc.add_flows({s.flows[0]});
  gmf::Flow bad = s.flows[1];
  bad = gmf::Flow(bad.name(), net::Route({NodeId(0), NodeId(3)}),
                  std::vector<gmf::FrameSpec>(bad.frames()), bad.priority());
  EXPECT_THROW(inc.add_flows({s.flows[1], bad}), std::logic_error);
  EXPECT_EQ(inc.flow_count(), 1u);
  const AnalysisContext only0(s.network, {s.flows[0]});
  for (const LinkRef l : inc.route_links(FlowId(0))) {
    EXPECT_DOUBLE_EQ(inc.link_utilization(l), only0.link_utilization(l));
  }
}

TEST(Context, RemoveFlowShiftsIdsAndRecomputesAggregates) {
  auto s = scenario();
  AnalysisContext ctx(s.network, s.flows);
  ASSERT_EQ(ctx.flow_count(), 3u);
  ctx.remove_flow(0);  // drop the MPEG flow 0 -> 4 -> 6 -> 3
  ASSERT_EQ(ctx.flow_count(), 2u);
  // Former flows 1 and 2 are now ids 0 and 1.
  EXPECT_EQ(ctx.flow(FlowId(0)).name(), s.flows[1].name());
  EXPECT_EQ(ctx.flow(FlowId(1)).name(), s.flows[2].name());
  const LinkRef l63(NodeId(6), NodeId(3));
  ASSERT_EQ(ctx.flows_on_link(l63).size(), 2u);
  // Aggregates equal a fresh build of the shrunk set.
  std::vector<gmf::Flow> rest = {s.flows[1], s.flows[2]};
  const AnalysisContext fresh(s.network, rest);
  EXPECT_DOUBLE_EQ(ctx.link_utilization(l63), fresh.link_utilization(l63));
  // The first-hop link of the removed flow carries nothing anymore.
  EXPECT_TRUE(ctx.flows_on_link(LinkRef(NodeId(0), NodeId(4))).empty());
  EXPECT_DOUBLE_EQ(ctx.link_utilization(LinkRef(NodeId(0), NodeId(4))), 0.0);
  EXPECT_THROW(ctx.remove_flow(2), std::out_of_range);
}

TEST(JitterMap, EraseFlowShiftsIdsDown) {
  JitterMap m;
  const StageKey st = StageKey::ingress(NodeId(4));
  m.set_jitter(FlowId(0), st, 0, gmfnet::Time::ms(1));
  m.set_jitter(FlowId(1), st, 0, gmfnet::Time::ms(2));
  m.set_jitter(FlowId(2), st, 0, gmfnet::Time::ms(3));
  m.erase_flow(FlowId(1));
  EXPECT_EQ(m.jitter(FlowId(0), st, 0), gmfnet::Time::ms(1));
  EXPECT_EQ(m.jitter(FlowId(1), st, 0), gmfnet::Time::ms(3));
}

TEST(JitterMap, ClearFlowAndFlowEquals) {
  JitterMap a;
  const StageKey st = StageKey::ingress(NodeId(4));
  a.set_jitter(FlowId(0), st, 0, gmfnet::Time::ms(1));
  a.set_jitter(FlowId(1), st, 0, gmfnet::Time::ms(2));
  JitterMap b = a;
  EXPECT_TRUE(a.flow_equals(b, FlowId(0)));
  b.set_jitter(FlowId(0), st, 0, gmfnet::Time::ms(9));
  EXPECT_FALSE(a.flow_equals(b, FlowId(0)));
  EXPECT_TRUE(a.flow_equals(b, FlowId(1)));  // CoW: flow 1 untouched
  a.clear_flow(FlowId(0));
  EXPECT_EQ(a.jitter(FlowId(0), st, 0), gmfnet::Time::zero());
  EXPECT_EQ(a.jitter(FlowId(1), st, 0), gmfnet::Time::ms(2));
}

TEST(JitterMap, CrossIdAdoptFlow) {
  JitterMap a;
  const StageKey st = StageKey::ingress(NodeId(4));
  a.set_jitter(FlowId(2), st, 0, gmfnet::Time::ms(5));
  JitterMap b;
  b.adopt_flow(a, FlowId(2), FlowId(0));
  EXPECT_EQ(b.jitter(FlowId(0), st, 0), gmfnet::Time::ms(5));
  EXPECT_EQ(b.jitter(FlowId(2), st, 0), gmfnet::Time::zero());
}

TEST(JitterMap, EqualityAndAdoptFlow) {
  auto s = scenario();
  const AnalysisContext ctx(s.network, s.flows);
  JitterMap a = JitterMap::initial(ctx);
  JitterMap b = a;
  EXPECT_EQ(a, b);
  const StageKey st = StageKey::ingress(NodeId(4));
  b.set_jitter(FlowId(1), st, 0, gmfnet::Time::us(7));
  EXPECT_NE(a, b);
  a.adopt_flow(b, FlowId(1));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace gmfnet::core
