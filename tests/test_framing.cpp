#include "ethernet/framing.hpp"

#include <gtest/gtest.h>

#include "ethernet/constants.hpp"

namespace gmfnet::ethernet {
namespace {

// --- constants of §3.1 ------------------------------------------------------

TEST(Constants, PaperWireFormat) {
  EXPECT_EQ(kDataBitsPerFrame, 11840);   // 1480 data bytes per frame
  EXPECT_EQ(kMaxFrameWireBits, 12304);   // max Ethernet frame on the wire
  EXPECT_EQ(kL2OverheadBits, 304);       // 14+4+8+12 bytes
  EXPECT_EQ(kIpHeaderBits, 160);
  EXPECT_EQ(kUdpHeaderBits, 64);
  EXPECT_EQ(kRtpHeaderBits, 128);
}

// --- udp_datagram_bits ------------------------------------------------------

TEST(DatagramBits, PadsPayloadToWholeBytes) {
  // ceil(S/8)*8 + 64.
  EXPECT_EQ(udp_datagram_bits(0), 64);
  EXPECT_EQ(udp_datagram_bits(1), 8 + 64);
  EXPECT_EQ(udp_datagram_bits(8), 8 + 64);
  EXPECT_EQ(udp_datagram_bits(9), 16 + 64);
  EXPECT_EQ(udp_datagram_bits(1600), 1600 + 64);
}

TEST(DatagramBits, RtpAddsSixteenBytes) {
  EXPECT_EQ(udp_datagram_bits(160 * 8, true),
            udp_datagram_bits(160 * 8, false) + 128);
}

// --- fragmentation ----------------------------------------------------------

TEST(FragmentCount, SingleFrameUpToCapacity) {
  EXPECT_EQ(fragment_count(0), 1);
  EXPECT_EQ(fragment_count(1), 1);
  EXPECT_EQ(fragment_count(kDataBitsPerFrame), 1);
  EXPECT_EQ(fragment_count(kDataBitsPerFrame + 1), 2);
  EXPECT_EQ(fragment_count(3 * kDataBitsPerFrame), 3);
}

TEST(FragmentWireBits, FullFragmentsAreMaxSize) {
  const Bits nbits = 2 * kDataBitsPerFrame + 100;
  EXPECT_EQ(fragment_wire_bits(nbits, 0), kMaxFrameWireBits);
  EXPECT_EQ(fragment_wire_bits(nbits, 1), kMaxFrameWireBits);
  // Trailing fragment: 100 data bits + IP header + L2 overhead.
  EXPECT_EQ(fragment_wire_bits(nbits, 2), 100 + 160 + 304);
}

TEST(FragmentWireBits, ExactMultipleHasAllFullFrames) {
  const Bits nbits = 2 * kDataBitsPerFrame;
  EXPECT_EQ(fragment_wire_bits(nbits, 0), kMaxFrameWireBits);
  EXPECT_EQ(fragment_wire_bits(nbits, 1), kMaxFrameWireBits);
}

TEST(FragmentWireBits, FullFrameIdentity) {
  // DESIGN.md correction #1: a "partial" frame carrying exactly 11840 bits
  // must weigh exactly like a full frame: 11840 + 160 + 304 = 12304.
  EXPECT_EQ(kDataBitsPerFrame + kIpHeaderBits + kL2OverheadBits,
            kMaxFrameWireBits);
}

TEST(DatagramWireBits, SumsFragments) {
  EXPECT_EQ(datagram_wire_bits(kDataBitsPerFrame), kMaxFrameWireBits);
  EXPECT_EQ(datagram_wire_bits(2 * kDataBitsPerFrame + 40),
            2 * kMaxFrameWireBits + 40 + 464);
  // Tiny datagram: one frame with its own overheads.
  EXPECT_EQ(datagram_wire_bits(64), 64 + 464);
}

TEST(FragmentLayout, MatchesPerFragmentQueries) {
  const Bits nbits = 3 * kDataBitsPerFrame + 5000;
  const auto layout = fragment_layout(nbits);
  ASSERT_EQ(layout.size(), 4u);
  Bits total = 0;
  for (std::size_t i = 0; i < layout.size(); ++i) {
    EXPECT_EQ(layout[i],
              fragment_wire_bits(nbits, static_cast<std::int64_t>(i)));
    total += layout[i];
  }
  EXPECT_EQ(total, datagram_wire_bits(nbits));
}

TEST(Constants, VlanTagDelta) {
  // DESIGN.md correction note #6: a priority-tagged max frame is 12336
  // bits; the paper's 12304 underestimates tagged deployments by 0.26%.
  EXPECT_EQ(kVlanTagBits, 32);
  EXPECT_EQ(kMaxFrameWireBits + kVlanTagBits, 12336);
  const double underestimate =
      static_cast<double>(kVlanTagBits) /
      static_cast<double>(kMaxFrameWireBits + kVlanTagBits);
  EXPECT_NEAR(underestimate, 0.0026, 0.0002);
}

// --- timing -----------------------------------------------------------------

TEST(Mft, PaperValues) {
  // eq (1): MFT = 12304 / linkspeed.
  EXPECT_EQ(max_frame_transmission_time(10'000'000), gmfnet::Time::ns(1'230'400));
  EXPECT_EQ(max_frame_transmission_time(100'000'000), gmfnet::Time::ns(123'040));
  EXPECT_EQ(max_frame_transmission_time(1'000'000'000), gmfnet::Time::ns(12'304));
}

TEST(WireTime, ExactAtRoundSpeeds) {
  EXPECT_EQ(wire_time(10'000'000, 10'000'000), gmfnet::Time::sec(1));
  EXPECT_EQ(wire_time(1, 1'000'000'000'000), gmfnet::Time(1));
}

TEST(WireTime, RoundsUp) {
  // 1 bit at 3 bps = 333333333333.33.. ps -> rounds up.
  const gmfnet::Time t = wire_time(1, 3);
  EXPECT_EQ(t.ps(), 333'333'333'334);
}

TEST(TransmissionTime, MatchesManualComputation) {
  // A 1480-byte payload: nbits = 11840 + 64 -> 2 fragments.
  const Bits nbits = udp_datagram_bits(1480 * 8);
  EXPECT_EQ(fragment_count(nbits), 2);
  const Bits wire = datagram_wire_bits(nbits);
  EXPECT_EQ(transmission_time(nbits, 10'000'000),
            wire_time(wire, 10'000'000));
}

TEST(TransmissionTime, MonotoneInPayload) {
  gmfnet::Time prev = gmfnet::Time::zero();
  for (Bits payload = 0; payload < 40000; payload += 997) {
    const Bits nbits = udp_datagram_bits(payload);
    const gmfnet::Time c = transmission_time(nbits, 100'000'000);
    EXPECT_GE(c, prev) << "payload " << payload;
    prev = c;
  }
}

TEST(TransmissionTime, FasterLinkIsFaster) {
  const Bits nbits = udp_datagram_bits(20000);
  EXPECT_LT(transmission_time(nbits, 100'000'000),
            transmission_time(nbits, 10'000'000));
}

// Property sweep: the frame count implied by eq (5)'s ceil(C/MFT) never
// exceeds the true fragment count (it is exactly equal at every payload:
// each fragment occupies at most MFT of wire time, and overheads make short
// fragments proportionally heavier, never lighter, than their share).
class FramingProperty : public ::testing::TestWithParam<Bits> {};

TEST_P(FramingProperty, CeilOfCOverMftEqualsFragmentCount) {
  const Bits payload = GetParam();
  const Bits nbits = udp_datagram_bits(payload);
  for (LinkSpeedBps speed : {10'000'000LL, 100'000'000LL, 1'000'000'000LL}) {
    const gmfnet::Time c = transmission_time(nbits, speed);
    const gmfnet::Time mft = max_frame_transmission_time(speed);
    EXPECT_EQ(c.ceil_div(mft), fragment_count(nbits))
        << "payload=" << payload << " speed=" << speed;
  }
}

INSTANTIATE_TEST_SUITE_P(PayloadSweep, FramingProperty,
                         ::testing::Values(0, 1, 100, 1472 * 8, 1473 * 8,
                                           11840, 11841, 20000, 65000,
                                           11840 * 3, 11840 * 3 + 1,
                                           65507 * 8));

}  // namespace
}  // namespace gmfnet::ethernet
