// Unit tests for the first-hop analysis (eqs 14-20) against hand-computed
// closed forms on small scenarios.
#include "core/first_hop.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::core {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 10'000'000;

/// Star network with one switch and four hosts; flows are built on demand.
struct World {
  net::StarNetwork star = net::make_star_network(4, kSpeed);

  net::Route route(std::size_t from, std::size_t to) const {
    return net::Route({star.hosts[from], star.sw, star.hosts[to]});
  }

  gmf::Flow sporadic(std::string name, std::size_t from, std::size_t to,
                     gmfnet::Time period, ethernet::Bits payload,
                     gmfnet::Time jitter = gmfnet::Time::zero()) const {
    return gmf::make_sporadic_flow(std::move(name), route(from, to), period,
                                   period, payload, 0, jitter);
  }
};

TEST(FirstHop, LoneFlowEqualsTransmissionTime) {
  World w;
  std::vector<gmf::Flow> flows = {
      w.sporadic("a", 0, 1, gmfnet::Time::ms(20), 1000 * 8)};
  const AnalysisContext ctx(w.star.net, flows);
  const JitterMap jm = JitterMap::initial(ctx);

  const HopResult r = analyze_first_hop(ctx, jm, FlowId(0), 0);
  ASSERT_TRUE(r.converged);
  const gmfnet::Time c =
      ctx.link_params(FlowId(0), LinkRef(w.star.hosts[0], w.star.sw)).c(0);
  EXPECT_EQ(r.response, c);  // no contention, zero propagation
  EXPECT_EQ(r.instances, 1);
}

TEST(FirstHop, PropagationDelayAdds) {
  net::Network net;
  const NodeId h0 = net.add_endhost();
  const NodeId sw = net.add_switch();
  const NodeId h1 = net.add_endhost();
  net.add_duplex_link(h0, sw, kSpeed, gmfnet::Time::us(50));
  net.add_duplex_link(sw, h1, kSpeed);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "a", net::Route({h0, sw, h1}), gmfnet::Time::ms(20),
      gmfnet::Time::ms(20), 1000 * 8)};
  const AnalysisContext ctx(net, flows);
  const JitterMap jm = JitterMap::initial(ctx);

  const HopResult r = analyze_first_hop(ctx, jm, FlowId(0), 0);
  ASSERT_TRUE(r.converged);
  const gmfnet::Time c =
      ctx.link_params(FlowId(0), LinkRef(h0, sw)).c(0);
  EXPECT_EQ(r.response, c + gmfnet::Time::us(50));  // eq (19)
}

TEST(FirstHop, TwoFlowsSameHostInterfere) {
  World w;
  std::vector<gmf::Flow> flows = {
      w.sporadic("a", 0, 1, gmfnet::Time::ms(20), 1000 * 8),
      w.sporadic("b", 0, 2, gmfnet::Time::ms(20), 4000 * 8)};
  const AnalysisContext ctx(w.star.net, flows);
  const JitterMap jm = JitterMap::initial(ctx);

  const LinkRef first(w.star.hosts[0], w.star.sw);
  const gmfnet::Time ca = ctx.link_params(FlowId(0), first).c(0);
  const gmfnet::Time cb = ctx.link_params(FlowId(1), first).c(0);

  const HopResult ra = analyze_first_hop(ctx, jm, FlowId(0), 0);
  ASSERT_TRUE(ra.converged);
  // Work-conserving first hop: flow b's packet can be ahead in the queue.
  EXPECT_EQ(ra.response, ca + cb);

  const HopResult rb = analyze_first_hop(ctx, jm, FlowId(1), 0);
  ASSERT_TRUE(rb.converged);
  EXPECT_EQ(rb.response, ca + cb);
}

TEST(FirstHop, PriorityIsIgnoredOnFirstHop) {
  // The operator cannot control the host's queueing discipline: even a
  // top-priority flow suffers all other flows on the first link.
  World w;
  std::vector<gmf::Flow> flows = {
      w.sporadic("hi", 0, 1, gmfnet::Time::ms(20), 1000 * 8),
      w.sporadic("lo", 0, 2, gmfnet::Time::ms(20), 4000 * 8)};
  flows[0].set_priority(100);
  flows[1].set_priority(0);
  const AnalysisContext ctx(w.star.net, flows);
  const JitterMap jm = JitterMap::initial(ctx);
  const LinkRef first(w.star.hosts[0], w.star.sw);
  const HopResult r = analyze_first_hop(ctx, jm, FlowId(0), 0);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.response, ctx.link_params(FlowId(0), first).c(0) +
                            ctx.link_params(FlowId(1), first).c(0));
}

TEST(FirstHop, FlowsOnOtherHostsDoNotInterfere) {
  World w;
  std::vector<gmf::Flow> flows = {
      w.sporadic("a", 0, 1, gmfnet::Time::ms(20), 1000 * 8),
      w.sporadic("b", 2, 3, gmfnet::Time::ms(20), 8000 * 8)};
  const AnalysisContext ctx(w.star.net, flows);
  const JitterMap jm = JitterMap::initial(ctx);
  const HopResult r = analyze_first_hop(ctx, jm, FlowId(0), 0);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.response,
            ctx.link_params(FlowId(0), LinkRef(w.star.hosts[0], w.star.sw))
                .c(0));
}

TEST(FirstHop, JitterOfInterfererEnlargesBound) {
  World w;
  std::vector<gmf::Flow> quiet = {
      w.sporadic("a", 0, 1, gmfnet::Time::ms(5), 1000 * 8),
      w.sporadic("b", 0, 2, gmfnet::Time::ms(5), 2000 * 8)};
  std::vector<gmf::Flow> jittery = quiet;
  jittery[1] = w.sporadic("b", 0, 2, gmfnet::Time::ms(5), 2000 * 8,
                          /*jitter=*/gmfnet::Time::ms(4));

  const AnalysisContext ctx_q(w.star.net, quiet);
  const AnalysisContext ctx_j(w.star.net, jittery);
  const HopResult rq =
      analyze_first_hop(ctx_q, JitterMap::initial(ctx_q), FlowId(0), 0);
  const HopResult rj =
      analyze_first_hop(ctx_j, JitterMap::initial(ctx_j), FlowId(0), 0);
  ASSERT_TRUE(rq.converged);
  ASSERT_TRUE(rj.converged);
  // A 4 ms jitter window lets a second packet of b (period 5 ms) squeeze
  // into the busy window.
  EXPECT_GT(rj.response, rq.response);
}

TEST(FirstHop, GmfFramesAnalyzedIndividually) {
  World w;
  std::vector<gmf::FrameSpec> fr(2);
  fr[0] = {gmfnet::Time::ms(30), gmfnet::Time::ms(100), gmfnet::Time::zero(),
           12'000 * 8};
  fr[1] = {gmfnet::Time::ms(30), gmfnet::Time::ms(100), gmfnet::Time::zero(),
           1'000 * 8};
  std::vector<gmf::Flow> flows = {gmf::Flow("g", w.route(0, 1), fr)};
  const AnalysisContext ctx(w.star.net, flows);
  const JitterMap jm = JitterMap::initial(ctx);
  const HopResult r0 = analyze_first_hop(ctx, jm, FlowId(0), 0);
  const HopResult r1 = analyze_first_hop(ctx, jm, FlowId(0), 1);
  ASSERT_TRUE(r0.converged);
  ASSERT_TRUE(r1.converged);
  EXPECT_GT(r0.response, r1.response);  // big frame takes longer
}

TEST(FirstHop, OverloadedLinkDetected) {
  World w;
  // 60 Mbit/s offered on a 10 Mbit/s link: eq (20) fails.
  std::vector<gmf::Flow> flows = {
      w.sporadic("a", 0, 1, gmfnet::Time::ms(2), 15'000 * 8)};
  const AnalysisContext ctx(w.star.net, flows);
  EXPECT_FALSE(first_hop_feasible(ctx, FlowId(0)));
  const HopResult r =
      analyze_first_hop(ctx, JitterMap::initial(ctx), FlowId(0), 0);
  EXPECT_FALSE(r.converged);
}

TEST(FirstHop, FeasibleWhenUnderUtilized) {
  World w;
  std::vector<gmf::Flow> flows = {
      w.sporadic("a", 0, 1, gmfnet::Time::ms(20), 1000 * 8)};
  const AnalysisContext ctx(w.star.net, flows);
  EXPECT_TRUE(first_hop_feasible(ctx, FlowId(0)));
}

TEST(FirstHop, HighUtilizationStillConverges) {
  World w;
  // Two flows together ~76% of the link; busy period spans multiple
  // periods, exercising the q loop.
  std::vector<gmf::Flow> flows = {
      w.sporadic("a", 0, 1, gmfnet::Time::ms(4), 1800 * 8),
      w.sporadic("b", 0, 2, gmfnet::Time::ms(4), 1800 * 8)};
  const AnalysisContext ctx(w.star.net, flows);
  const HopResult r =
      analyze_first_hop(ctx, JitterMap::initial(ctx), FlowId(0), 0);
  ASSERT_TRUE(r.converged);
  EXPECT_GE(r.instances, 1);
  EXPECT_GT(r.iterations, 0);
}

}  // namespace
}  // namespace gmfnet::core
