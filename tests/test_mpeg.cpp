#include "gmf/mpeg.hpp"

#include <gtest/gtest.h>

#include "gmf/link_params.hpp"
#include "net/topology.hpp"

namespace gmfnet::gmf {
namespace {

net::Route route03(const net::Figure1Network& f) {
  return net::Route({f.host0, f.sw4, f.sw6, f.host3});
}

TEST(Mpeg, Figure3FlowHasNineFrames) {
  const auto f = net::make_figure1_network();
  const Flow flow = make_figure3_flow("mpeg", route03(f));
  // Figure 3: 9 frames (I+P, B, B, P, B, B, P, B, B), 30 ms apart.
  EXPECT_EQ(flow.frame_count(), 9u);
  for (std::size_t k = 0; k < 9; ++k) {
    EXPECT_EQ(flow.frame(k).min_separation, gmfnet::Time::ms(30));
  }
}

TEST(Mpeg, Figure3TsumIs270ms) {
  // The paper's eq (6) worked example: TSUM_j = 270 ms.
  const auto f = net::make_figure1_network();
  const Flow flow = make_figure3_flow("mpeg", route03(f));
  EXPECT_EQ(flow.tsum(), gmfnet::Time::ms(270));
}

TEST(Mpeg, PatternMapsSizes) {
  const auto f = net::make_figure1_network();
  MpegSizes sizes;
  sizes.i_bits = 1000;
  sizes.p_bits = 200;
  sizes.b_bits = 48;
  const Flow flow =
      make_mpeg_flow("m", route03(f), "XIBP", sizes, gmfnet::Time::ms(30),
                     gmfnet::Time::ms(100));
  ASSERT_EQ(flow.frame_count(), 4u);
  EXPECT_EQ(flow.frame(0).payload_bits, 1200);  // X = I+P coalesced
  EXPECT_EQ(flow.frame(1).payload_bits, 1000);
  EXPECT_EQ(flow.frame(2).payload_bits, 48);
  EXPECT_EQ(flow.frame(3).payload_bits, 200);
}

TEST(Mpeg, Figure3FirstSlotIsCoalescedIP) {
  const auto f = net::make_figure1_network();
  MpegSizes sizes;
  const Flow flow = make_figure3_flow("m", route03(f), sizes);
  EXPECT_EQ(flow.frame(0).payload_bits, sizes.i_bits + sizes.p_bits);
  EXPECT_EQ(flow.frame(1).payload_bits, sizes.b_bits);
  EXPECT_EQ(flow.frame(3).payload_bits, sizes.p_bits);
}

TEST(Mpeg, RejectsBadPattern) {
  const auto f = net::make_figure1_network();
  EXPECT_THROW(make_mpeg_flow("m", route03(f), "IZB", MpegSizes{},
                              gmfnet::Time::ms(30), gmfnet::Time::ms(100)),
               std::invalid_argument);
  EXPECT_THROW(make_mpeg_flow("m", route03(f), "", MpegSizes{},
                              gmfnet::Time::ms(30), gmfnet::Time::ms(100)),
               std::invalid_argument);
}

TEST(Mpeg, DefaultsValidateOnFigure1) {
  const auto f = net::make_figure1_network();
  const Flow flow = make_figure3_flow("m", route03(f));
  EXPECT_NO_THROW(flow.validate(f.net));
  EXPECT_EQ(flow.frame(0).jitter, gmfnet::Time::ms(1));  // Figure 4 example
}

TEST(Mpeg, IFrameDominatesTransmissionTime) {
  // On the 10 Mbit/s link of the worked example, the I+P packet must take
  // the longest of the cycle and the B packets the shortest.
  const auto f = net::make_figure1_network();
  const Flow flow = make_figure3_flow("m", route03(f));
  const FlowLinkParams p(flow, 10'000'000);
  for (std::size_t k = 1; k < 9; ++k) {
    EXPECT_LT(p.c(k), p.c(0)) << "frame " << k;
  }
  EXPECT_LT(p.c(1), p.c(3));  // B < P
}

TEST(Mpeg, UtilizationBelowOneOnWorkedExampleLink) {
  // The worked example assumes the stream fits a 10 Mbit/s link.
  const auto f = net::make_figure1_network();
  const Flow flow = make_figure3_flow("m", route03(f));
  const FlowLinkParams p(flow, 10'000'000);
  EXPECT_LT(p.utilization(), 1.0);
  EXPECT_GT(p.utilization(), 0.0);
}

}  // namespace
}  // namespace gmfnet::gmf
