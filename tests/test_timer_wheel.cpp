// TimerWheel contracts (rpc/timer_wheel.hpp): the reactor's deadline
// bookkeeping must never fire early, must fire within one tick of the
// deadline, and schedule/cancel/reschedule must be lazy — superseded wheel
// entries are discarded, not resurrected.  All tests drive the wheel with
// explicit time points (no sleeping): the wheel is pure bookkeeping over
// the clock values the reactor feeds it.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "rpc/timer_wheel.hpp"

namespace gmfnet::rpc {
namespace {

using Clock = TimerWheel::Clock;
using std::chrono::milliseconds;

std::vector<std::uint64_t> expired_at(TimerWheel& w, Clock::time_point t) {
  std::vector<std::uint64_t> out;
  w.expire(t, out);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(TimerWheel, FiresAtDeadlineWithinOneTick) {
  TimerWheel w(/*tick_ms=*/10);
  const Clock::time_point t0 = Clock::now();
  w.schedule(7, t0 + milliseconds(35));

  // Strictly before the deadline: silent (never early).
  EXPECT_TRUE(expired_at(w, t0 + milliseconds(20)).empty());
  EXPECT_TRUE(w.armed(7));

  // One tick past the deadline is always enough.
  const auto fired = expired_at(w, t0 + milliseconds(35 + 10));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 7u);
  EXPECT_FALSE(w.armed(7));

  // Disarmed: never fires twice.
  EXPECT_TRUE(expired_at(w, t0 + milliseconds(1000)).empty());
}

TEST(TimerWheel, CancelIsLazyAndIdempotent) {
  TimerWheel w(10);
  const Clock::time_point t0 = Clock::now();
  w.schedule(1, t0 + milliseconds(30));
  w.cancel(1);
  w.cancel(1);
  EXPECT_FALSE(w.armed(1));
  EXPECT_TRUE(expired_at(w, t0 + milliseconds(200)).empty());
}

TEST(TimerWheel, RescheduleSupersedesTheOldDeadline) {
  TimerWheel w(10);
  const Clock::time_point t0 = Clock::now();
  // The io/idle pattern: every frame pushes the deadline out again.
  w.schedule(5, t0 + milliseconds(30));
  w.schedule(5, t0 + milliseconds(300));

  // The superseded entry's slot passes: nothing fires.
  EXPECT_TRUE(expired_at(w, t0 + milliseconds(100)).empty());
  EXPECT_TRUE(w.armed(5));

  const auto fired = expired_at(w, t0 + milliseconds(320));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 5u);
}

TEST(TimerWheel, RescheduleEarlierFiresEarlier) {
  TimerWheel w(10);
  const Clock::time_point t0 = Clock::now();
  w.schedule(9, t0 + milliseconds(500));
  w.schedule(9, t0 + milliseconds(20));
  const auto fired = expired_at(w, t0 + milliseconds(40));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 9u);
  // The old far-future entry must stay dead.
  EXPECT_TRUE(expired_at(w, t0 + milliseconds(1000)).empty());
}

TEST(TimerWheel, ManyTimersAcrossWheelRevolutions) {
  // 8 slots x 10ms tick = an 80ms revolution; deadlines far beyond one
  // revolution exercise the keep-for-a-later-pass path.
  TimerWheel w(/*tick_ms=*/10, /*slots=*/8);
  const Clock::time_point t0 = Clock::now();
  for (std::uint64_t id = 0; id < 64; ++id) {
    w.schedule(id, t0 + milliseconds(10 + 25 * static_cast<int>(id)));
  }
  EXPECT_EQ(w.size(), 64u);

  std::vector<std::uint64_t> all;
  // Sweep time forward in coarse jumps; every timer must fire exactly once
  // and never before its deadline.
  for (int ms = 0; ms <= 10 + 25 * 64 + 20; ms += 35) {
    std::vector<std::uint64_t> out;
    w.expire(t0 + milliseconds(ms), out);
    for (const std::uint64_t id : out) {
      EXPECT_LE(10 + 25 * static_cast<int>(id), ms) << "fired early: " << id;
      all.push_back(id);
    }
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 64u);
  for (std::uint64_t id = 0; id < 64; ++id) EXPECT_EQ(all[id], id);
  EXPECT_EQ(w.size(), 0u);
}

TEST(TimerWheel, NextDelayBoundsTheEventLoopWait) {
  TimerWheel w(10);
  const Clock::time_point t0 = Clock::now();
  // No timers: wait forever.
  EXPECT_EQ(w.next_delay_ms(t0), -1);
  w.schedule(1, t0 + milliseconds(25));
  // Armed: the loop must wake within one tick.
  const int d = w.next_delay_ms(t0);
  EXPECT_GE(d, 0);
  EXPECT_LE(d, 10);
}

TEST(TimerWheel, PastDeadlineFiresOnTheNextExpire) {
  TimerWheel w(10);
  const Clock::time_point t0 = Clock::now();
  w.schedule(3, t0 - milliseconds(50));  // already overdue
  const auto fired = expired_at(w, t0 + milliseconds(10));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3u);
}

}  // namespace
}  // namespace gmfnet::rpc
