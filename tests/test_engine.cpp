// Unit tests of the incremental AnalysisEngine: lazy dirty tracking, warm
// starts, cache reuse, what-if probes and batch admission.  The bit-exact
// incremental == from-scratch property is covered separately in
// test_engine_equivalence.cpp.
#include "engine/analysis_engine.hpp"

#include <gtest/gtest.h>

#include <string>

#include "net/topology.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::engine {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 10'000'000;

gmf::Flow voip_between(const net::StarNetwork& star, std::size_t a,
                       std::size_t b, const std::string& name) {
  return workload::make_voip_flow(
      name, net::Route({star.hosts[a], star.sw, star.hosts[b]}));
}

TEST(Engine, EmptySetEvaluatesSchedulable) {
  const auto star = net::make_star_network(4, kSpeed);
  AnalysisEngine eng(star.net);
  const auto& r = eng.evaluate();
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.schedulable);
  EXPECT_TRUE(r.flows.empty());
}

TEST(Engine, EvaluateIsMemoized) {
  const auto star = net::make_star_network(4, kSpeed);
  AnalysisEngine eng(star.net);
  eng.add_flow(voip_between(star, 0, 1, "a"));
  (void)eng.evaluate();
  const std::size_t evals = eng.stats().evaluations;
  // No mutation in between: the cached result is served as-is.
  (void)eng.evaluate();
  (void)eng.evaluate();
  EXPECT_EQ(eng.stats().evaluations, evals);
}

TEST(Engine, AddFlowReanalyzesOnlyItsComponent) {
  // Star with disjoint host pairs: flows share no links, so adding one must
  // not re-analyse the others.
  const auto star = net::make_star_network(8, kSpeed);
  AnalysisEngine eng(star.net);
  eng.add_flow(voip_between(star, 0, 1, "a"));
  eng.add_flow(voip_between(star, 2, 3, "b"));
  ASSERT_TRUE(eng.evaluate().schedulable);

  const std::size_t analyses = eng.stats().flow_analyses;
  eng.add_flow(voip_between(star, 4, 5, "c"));
  const auto& r = eng.evaluate();
  EXPECT_TRUE(r.schedulable);
  ASSERT_EQ(r.flows.size(), 3u);
  // Two untouched flows reused; the new flow converges in 2 subset sweeps,
  // so exactly 2 per-flow analyses ran.
  EXPECT_EQ(eng.stats().flow_analyses - analyses, 2u);
  EXPECT_GE(eng.stats().flow_results_reused, 2u);
}

TEST(Engine, WarmStartConvergesInTwoSweepsForIndependentAdd) {
  const auto star = net::make_star_network(8, kSpeed);
  AnalysisEngine eng(star.net);
  eng.add_flow(voip_between(star, 0, 1, "a"));
  eng.add_flow(voip_between(star, 2, 3, "b"));
  (void)eng.evaluate();
  eng.add_flow(voip_between(star, 4, 5, "c"));
  EXPECT_EQ(eng.evaluate().sweeps, 2);
}

TEST(Engine, RemoveFlowShiftsIndicesAndFreesCapacity) {
  const auto star = net::make_star_network(4, kSpeed);
  AnalysisEngine eng(star.net);
  // Fill the 0->1 path.
  int accepted = 0;
  while (eng.try_admit(voip_between(star, 0, 1, "x" + std::to_string(accepted)))
             .has_value()) {
    ++accepted;
    ASSERT_LT(accepted, 200);
  }
  ASSERT_GE(accepted, 1);
  EXPECT_TRUE(eng.remove_flow(0));
  EXPECT_EQ(eng.flow_count(), static_cast<std::size_t>(accepted - 1));
  EXPECT_TRUE(eng.try_admit(voip_between(star, 0, 1, "y")).has_value());
}

TEST(Engine, RemoveOutOfRangeReturnsFalse) {
  const auto star = net::make_star_network(4, kSpeed);
  AnalysisEngine eng(star.net);
  EXPECT_FALSE(eng.remove_flow(0));
  eng.add_flow(voip_between(star, 0, 1, "a"));
  EXPECT_FALSE(eng.remove_flow(1));
  EXPECT_TRUE(eng.remove_flow(0));
  EXPECT_EQ(eng.flow_count(), 0u);
}

TEST(Engine, TryAdmitRejectsWithoutCommitting) {
  const auto star = net::make_star_network(4, kSpeed);
  AnalysisEngine eng(star.net);
  ASSERT_TRUE(eng.try_admit(voip_between(star, 0, 1, "ok")).has_value());
  // 15000 bytes per 2 ms = 60 Mbit/s on a 10 Mbit/s link.
  gmf::Flow hog = gmf::make_sporadic_flow(
      "hog", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(2), gmfnet::Time::ms(2), 15000 * 8);
  EXPECT_FALSE(eng.try_admit(hog).has_value());
  ASSERT_EQ(eng.flow_count(), 1u);
  EXPECT_EQ(eng.flow(0).name(), "ok");
  // The cached state survived the rejected probe.
  EXPECT_TRUE(eng.evaluate().schedulable);
}

TEST(Engine, WhatIfDoesNotCommit) {
  const auto star = net::make_star_network(4, kSpeed);
  AnalysisEngine eng(star.net);
  eng.add_flow(voip_between(star, 0, 1, "a"));
  const WhatIfResult w = eng.what_if(voip_between(star, 2, 3, "probe"));
  EXPECT_TRUE(w.admissible);
  EXPECT_EQ(w.result().flows.size(), 2u);  // resident + candidate
  EXPECT_EQ(eng.flow_count(), 1u);       // nothing committed
}

TEST(Engine, MalformedCandidateThrows) {
  const auto star = net::make_star_network(4, kSpeed);
  AnalysisEngine eng(star.net);
  gmf::Flow bad("bad", net::Route({star.hosts[0], star.hosts[1]}), {});
  EXPECT_THROW(eng.try_admit(bad), std::logic_error);
  EXPECT_THROW(eng.what_if(bad), std::logic_error);
  EXPECT_THROW(eng.add_flow(bad), std::logic_error);
  EXPECT_THROW((void)eng.evaluate_batch({bad}), std::logic_error);
  EXPECT_EQ(eng.flow_count(), 0u);
}

TEST(Engine, EvaluateBatchMatchesIndividualProbes) {
  const auto star = net::make_star_network(10, kSpeed);
  AnalysisEngine eng(star.net);
  eng.add_flow(voip_between(star, 0, 1, "a"));
  eng.add_flow(voip_between(star, 2, 3, "b"));
  (void)eng.evaluate();

  std::vector<gmf::Flow> cands;
  cands.push_back(voip_between(star, 4, 5, "c0"));
  cands.push_back(voip_between(star, 6, 7, "c1"));
  cands.push_back(gmf::make_sporadic_flow(
      "hog", net::Route({star.hosts[8], star.sw, star.hosts[9]}),
      gmfnet::Time::ms(2), gmfnet::Time::ms(2), 15000 * 8));

  const auto batch = eng.evaluate_batch(cands);
  ASSERT_EQ(batch.size(), cands.size());
  EXPECT_EQ(eng.flow_count(), 2u);  // probes are independent, uncommitted

  for (std::size_t i = 0; i < cands.size(); ++i) {
    const WhatIfResult solo = eng.what_if(cands[i]);
    EXPECT_EQ(batch[i].admissible, solo.admissible) << "candidate " << i;
    EXPECT_EQ(batch[i].result().schedulable, solo.result().schedulable);
    if (solo.result().converged) {
      EXPECT_TRUE(batch[i].result().jitters == solo.result().jitters)
          << "candidate " << i;
    }
  }
  EXPECT_TRUE(batch[0].admissible);
  EXPECT_TRUE(batch[1].admissible);
  EXPECT_FALSE(batch[2].admissible);
}

TEST(Engine, EngineSurvivesUnschedulableResidentSet) {
  // add_flow is ungated, so the resident set can become unschedulable (or
  // even diverging); evaluate must report it and recover after removal.
  const auto star = net::make_star_network(4, kSpeed);
  AnalysisEngine eng(star.net);
  eng.add_flow(voip_between(star, 0, 1, "ok"));
  eng.add_flow(gmf::make_sporadic_flow(
      "hog", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(2), gmfnet::Time::ms(2), 15000 * 8));
  EXPECT_FALSE(eng.evaluate().schedulable);
  EXPECT_TRUE(eng.remove_flow(1));
  const auto& r = eng.evaluate();
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.schedulable);
  ASSERT_EQ(r.flows.size(), 1u);
}

}  // namespace
}  // namespace gmfnet::engine
