// io::AtomicFileWriter crash-safety contract: at every instant the target
// path (or, with keep_previous, the target-or-.prev pair) holds one
// complete good generation.  The fault hook fails or "crashes" commit at
// each stage boundary and the tests assert what a reader — in particular
// gmfnetd's boot recovery, which tries <target> then <target>.prev —
// would find afterwards.
#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "engine/analysis_engine.hpp"
#include "io/atomic_file.hpp"
#include "net/topology.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::io {
namespace {

/// Thrown by fault hooks to simulate the process dying at that stage.
struct SimulatedCrash {};

/// Every test must leave no hook behind — a leaked hook would fail every
/// later checkpoint write in the binary.
class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    target_ = "/tmp/gmfnet_atomic_test_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter_++) + ".dat";
    cleanup();
  }
  void TearDown() override {
    set_file_fault_hook({});
    cleanup();
  }

  void cleanup() {
    ::unlink(target_.c_str());
    ::unlink(AtomicFileWriter::previous_path(target_).c_str());
  }

  static std::optional<std::string> read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return std::move(ss).str();
  }

  /// gmfnetd's boot-recovery read order: target first, then .prev.
  std::optional<std::string> recovered() const {
    if (auto c = read_file(target_)) return c;
    return read_file(AtomicFileWriter::previous_path(target_));
  }

  std::string target_;
  static int counter_;
};

int AtomicFileTest::counter_ = 0;

TEST_F(AtomicFileTest, CommitCreatesThenReplaces) {
  atomic_write_file(target_, "generation 1");
  EXPECT_EQ(read_file(target_), "generation 1");

  AtomicFileWriter w(target_);
  w.stream() << "generation 2";
  w.commit();
  EXPECT_EQ(read_file(target_), "generation 2");
  EXPECT_FALSE(read_file(w.temp_path()).has_value());  // temp cleaned up
}

TEST_F(AtomicFileTest, AbortAndUncommittedDestructorTouchNothing) {
  atomic_write_file(target_, "good");
  {
    AtomicFileWriter w(target_);
    w.stream() << "never committed";
    w.abort();
  }
  {
    AtomicFileWriter w(target_);
    w.stream() << "never committed either";
  }  // destructor aborts
  EXPECT_EQ(read_file(target_), "good");
}

TEST_F(AtomicFileTest, FailedWriteAndFsyncLeaveTargetUntouched) {
  atomic_write_file(target_, "good");
  for (const char* failing_stage : {"write", "fsync"}) {
    set_file_fault_hook([failing_stage](std::string_view stage,
                                        const std::string&) {
      return stage == failing_stage;
    });
    AtomicFileWriter w(target_);
    w.stream() << "torn";
    EXPECT_THROW(w.commit(), AtomicFileError) << failing_stage;
    EXPECT_EQ(read_file(target_), "good") << failing_stage;
    EXPECT_FALSE(read_file(w.temp_path()).has_value()) << failing_stage;
  }
}

TEST_F(AtomicFileTest, KeepPreviousRotatesTheOldGeneration) {
  atomic_write_file(target_, "old", /*keep_previous=*/true);
  atomic_write_file(target_, "new", /*keep_previous=*/true);
  EXPECT_EQ(read_file(target_), "new");
  EXPECT_EQ(read_file(AtomicFileWriter::previous_path(target_)), "old");
}

TEST_F(AtomicFileTest, CrashBeforeAnyRenameKeepsTargetByteIdentical) {
  atomic_write_file(target_, "good generation", /*keep_previous=*/true);
  // Die after the temp file is written+fsynced but before the rotation —
  // the widest part of the "between temp write and rename" crash window.
  set_file_fault_hook([](std::string_view stage, const std::string&) -> bool {
    if (stage == "rename-previous") throw SimulatedCrash{};
    return false;
  });
  AtomicFileWriter w(target_, /*keep_previous=*/true);
  w.stream() << "lost generation";
  EXPECT_THROW(w.commit(), SimulatedCrash);
  set_file_fault_hook({});
  EXPECT_EQ(read_file(target_), "good generation");
  EXPECT_EQ(recovered(), "good generation");
}

TEST_F(AtomicFileTest, CrashBetweenRenamesLeavesPrevRecoverable) {
  atomic_write_file(target_, "good generation", /*keep_previous=*/true);
  // Die after the target rotated to .prev but before the new file renamed
  // in: the only window where the target path itself is absent.
  set_file_fault_hook([](std::string_view stage, const std::string&) -> bool {
    if (stage == "rename") throw SimulatedCrash{};
    return false;
  });
  AtomicFileWriter w(target_, /*keep_previous=*/true);
  w.stream() << "lost generation";
  EXPECT_THROW(w.commit(), SimulatedCrash);
  set_file_fault_hook({});
  EXPECT_FALSE(read_file(target_).has_value());
  EXPECT_EQ(read_file(AtomicFileWriter::previous_path(target_)),
            "good generation");
  EXPECT_EQ(recovered(), "good generation");
}

// ------------------------------------------------ engine checkpoint crash --

// A kill at any stage of a checkpoint save never costs the previous
// checkpoint: recovery (target, then .prev) restores an engine whose
// re-saved checkpoint is byte-identical to the last good generation.
TEST_F(AtomicFileTest, EngineCheckpointSurvivesCrashAtEveryStage) {
  const auto star = net::make_star_network(6, 100'000'000);
  engine::AnalysisEngine eng(star.net);
  for (int n = 0; n < 3; ++n) {
    const auto a = static_cast<std::size_t>(n);
    ASSERT_TRUE(eng.try_admit(workload::make_voip_flow(
        "c" + std::to_string(n),
        net::Route({star.hosts[a], star.sw, star.hosts[a + 1]}))));
  }
  std::ostringstream good;
  eng.save(good);
  const std::string good_bytes = std::move(good).str();
  atomic_write_file(target_, good_bytes, /*keep_previous=*/true);

  // A newer world whose save keeps dying.
  ASSERT_TRUE(eng.try_admit(workload::make_voip_flow(
      "extra", net::Route({star.hosts[4], star.sw, star.hosts[5]}))));

  for (const char* crash_stage :
       {"write", "fsync", "rename-previous", "rename"}) {
    set_file_fault_hook(
        [crash_stage](std::string_view stage, const std::string&) -> bool {
          if (stage == crash_stage) throw SimulatedCrash{};
          return false;
        });
    AtomicFileWriter w(target_, /*keep_previous=*/true);
    eng.save(w.stream());
    EXPECT_THROW(w.commit(), SimulatedCrash) << crash_stage;
    set_file_fault_hook({});

    const std::optional<std::string> bytes = recovered();
    ASSERT_TRUE(bytes.has_value()) << crash_stage;
    EXPECT_EQ(*bytes, good_bytes) << crash_stage;
    std::istringstream is(*bytes);
    engine::AnalysisEngine restored = engine::AnalysisEngine::restore(is);
    EXPECT_EQ(restored.flow_count(), 3u) << crash_stage;

    // Re-seed the on-disk state for the next crash stage: the "rename"
    // crash leaves the good generation at .prev only.
    atomic_write_file(target_, good_bytes, /*keep_previous=*/true);
  }
}

}  // namespace
}  // namespace gmfnet::io
