// Replication contracts (src/rpc/replication.*, the Server's replica
// mode, and the promote/role/repoint verbs):
//
//  * Address grammar: parse_primary_addr accepts exactly "unix:PATH" and
//    "HOST:PORT" and round-trips through format_primary_addr.
//
//  * ReplicationLog: contiguous append, blocking fetch, bounded capacity
//    (a subscriber behind the window gets kGap), reset() restarts the
//    window, request_stop() wakes waiters with kStopped.
//
//  * Roles: a replica answers WHAT_IF_BATCH/STATS from its own snapshots
//    and rejects every mutation with NOT_PRIMARY carrying the primary's
//    address; STATS/ROLE expose role, epoch and commit position.
//
//  * Convergence: a replica bootstraps via SYNC_FULL, follows the delta
//    stream, and its delivered verdicts are bit-identical to an
//    in-process mirror engine driven through the same committed ops.
//
//  * Gap recovery: a replica paused past the primary's bounded journal
//    provably recovers via a fresh full sync (full_syncs() increments)
//    and converges again.
//
//  * Epoch fencing: promote bumps the epoch past everything observed; a
//    promoted replica rejects its stale ex-primary (stale_rejects()), and
//    an ex-primary self-fences when a higher-epoch subscriber appears.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/priority.hpp"
#include "engine/analysis_engine.hpp"
#include "net/topology.hpp"
#include "rpc/client.hpp"
#include "rpc/replication.hpp"
#include "rpc/server.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/taskset_gen.hpp"

namespace gmfnet::rpc {
namespace {

using namespace std::chrono_literals;

constexpr ethernet::LinkSpeedBps kSpeed = 100'000'000;

/// Multi-cell star campus (several locality domains by construction).
struct Campus {
  net::Network net;
  std::vector<net::NodeId> hosts;  // cell-major
  std::vector<net::NodeId> switches;
};

Campus make_campus(int cells, int hosts_per_cell) {
  Campus c;
  for (int cell = 0; cell < cells; ++cell) {
    const net::NodeId sw = c.net.add_switch("sw" + std::to_string(cell));
    c.switches.push_back(sw);
    for (int h = 0; h < hosts_per_cell; ++h) {
      const net::NodeId host = c.net.add_endhost(
          "c" + std::to_string(cell) + "h" + std::to_string(h));
      c.net.add_duplex_link(host, sw, kSpeed);
      c.hosts.push_back(host);
    }
  }
  return c;
}

void expect_bit_identical(const core::HolisticResult& a,
                          const core::HolisticResult& b,
                          const std::string& where) {
  ASSERT_EQ(a.converged, b.converged) << where;
  ASSERT_EQ(a.schedulable, b.schedulable) << where;
  ASSERT_EQ(a.sweeps, b.sweeps) << where;
  EXPECT_TRUE(a.jitters == b.jitters) << where << ": jitter maps differ";
  ASSERT_EQ(a.flows.size(), b.flows.size()) << where;
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    ASSERT_EQ(a.flows[f].frames.size(), b.flows[f].frames.size()) << where;
    for (std::size_t k = 0; k < a.flows[f].frames.size(); ++k) {
      EXPECT_EQ(a.flows[f].frames[k].response, b.flows[f].frames[k].response)
          << where << ": flow " << f << " frame " << k;
    }
  }
}

std::string fresh_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/gmfnet_repl_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// A served engine on a fresh Unix socket, plus the serve thread.
class TestDaemon {
 public:
  explicit TestDaemon(const net::Network& network, ServerConfig cfg = {})
      : engine_(std::make_shared<engine::AnalysisEngine>(network)) {
    cfg.unix_path = fresh_socket_path();
    server_ = std::make_unique<Server>(engine_, cfg);
    path_ = server_->unix_path();
    thread_ = std::thread([this] { server_->serve(); });
  }

  ~TestDaemon() { stop(); }

  void stop() {
    if (server_) server_->request_stop();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] Client connect() const { return Client::connect_unix(path_); }
  [[nodiscard]] Server& server() { return *server_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::shared_ptr<engine::AnalysisEngine> engine_;
  std::unique_ptr<Server> server_;
  std::string path_;
  std::thread thread_;
};

ServerConfig replica_config(const std::string& primary_path,
                            std::size_t journal_cap = 1024) {
  ServerConfig cfg;
  cfg.replica_of = "unix:" + primary_path;
  cfg.journal_capacity = journal_cap;
  cfg.repl_backoff_initial_ms = 5;
  cfg.repl_backoff_max_ms = 50;
  cfg.repl_backoff_seed = 0xDE7E12;
  return cfg;
}

/// Polls until the replica has applied the primary's commit position (or
/// the deadline passes — asserted by the caller via the return value).
bool await_caught_up(Server& replica, std::uint64_t epoch,
                     std::uint64_t commit_seq, int timeout_ms = 15'000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (replica.epoch() == epoch && replica.commit_seq() == commit_seq) {
      return true;
    }
    std::this_thread::sleep_for(5ms);
  }
  return false;
}

std::vector<gmf::Flow> make_flows(const Campus& campus, std::uint64_t seed,
                                  int count) {
  Rng rng(seed);
  workload::TasksetParams params;
  params.num_flows = count;
  params.total_utilization = 0.4;
  params.deadline_factor_lo = 2.0;
  params.deadline_factor_hi = 4.0;
  auto ts = workload::generate_taskset(campus.net, campus.hosts, params, rng);
  EXPECT_TRUE(ts.has_value());
  core::assign_priorities(ts->flows, core::PriorityScheme::kDeadlineMonotonic);
  return std::move(ts->flows);
}

// ---------------------------------------------------------- address grammar --

TEST(PrimaryAddr, ParsesUnixAndTcpFormsAndRoundTrips) {
  const PrimaryAddr u = parse_primary_addr("unix:/tmp/p.sock");
  EXPECT_EQ(u.unix_path, "/tmp/p.sock");
  EXPECT_TRUE(u.valid());
  EXPECT_EQ(format_primary_addr(u), "unix:/tmp/p.sock");

  const PrimaryAddr t = parse_primary_addr("127.0.0.1:9443");
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 9443);
  EXPECT_EQ(format_primary_addr(t), "127.0.0.1:9443");
}

TEST(PrimaryAddr, RejectsMalformedAddresses) {
  for (const char* bad : {"", "unix:", "no-port", "host:", "host:0",
                          "host:65536", "host:12ab", ":443"}) {
    EXPECT_THROW((void)parse_primary_addr(bad), std::invalid_argument)
        << "addr: " << bad;
  }
}

// ---------------------------------------------------------- journal basics --

TEST(ReplicationLog, AppendsContiguouslyAndFetchesInOrder) {
  ReplicationLog log(8);
  EXPECT_EQ(log.first_seq(), 1u);
  EXPECT_EQ(log.next_seq(), 1u);
  log.append(1, "one");
  log.append(2, "two");
  EXPECT_THROW(log.append(5, "gap"), std::logic_error);

  std::string frame;
  ASSERT_EQ(log.wait_fetch(1, frame, 100), ReplicationLog::Fetch::kOk);
  EXPECT_EQ(frame, "one");
  ASSERT_EQ(log.wait_fetch(2, frame, 100), ReplicationLog::Fetch::kOk);
  EXPECT_EQ(frame, "two");
  EXPECT_EQ(log.wait_fetch(3, frame, 20), ReplicationLog::Fetch::kTimeout);
}

TEST(ReplicationLog, BoundedCapacityEvictsIntoGap) {
  ReplicationLog log(3);
  for (std::uint64_t s = 1; s <= 6; ++s) {
    log.append(s, "f" + std::to_string(s));
  }
  EXPECT_EQ(log.first_seq(), 4u);
  EXPECT_EQ(log.next_seq(), 7u);
  std::string frame;
  EXPECT_EQ(log.wait_fetch(2, frame, 100), ReplicationLog::Fetch::kGap);
  ASSERT_EQ(log.wait_fetch(4, frame, 100), ReplicationLog::Fetch::kOk);
  EXPECT_EQ(frame, "f4");
}

TEST(ReplicationLog, ResetRestartsTheWindow) {
  ReplicationLog log(8);
  log.append(1, "a");
  log.append(2, "b");
  log.reset(10);
  EXPECT_EQ(log.first_seq(), 10u);
  EXPECT_EQ(log.next_seq(), 10u);
  std::string frame;
  EXPECT_EQ(log.wait_fetch(2, frame, 50), ReplicationLog::Fetch::kGap);
  log.append(10, "j");
  ASSERT_EQ(log.wait_fetch(10, frame, 100), ReplicationLog::Fetch::kOk);
  EXPECT_EQ(frame, "j");
}

TEST(ReplicationLog, StopWakesBlockedWaiters) {
  ReplicationLog log(8);
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    std::string frame;
    const auto r = log.wait_fetch(1, frame, 10'000);
    woke.store(r == ReplicationLog::Fetch::kStopped);
  });
  std::this_thread::sleep_for(30ms);
  log.request_stop();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

// ------------------------------------------------------------------- roles --

TEST(Replication, ReplicaServesReadsAndRejectsMutations) {
  const Campus campus = make_campus(3, 4);
  TestDaemon primary(campus.net);
  EXPECT_EQ(primary.server().role(), Role::kPrimary);
  EXPECT_EQ(primary.server().epoch(), 1u);

  TestDaemon replica(campus.net, replica_config(primary.path()));
  EXPECT_EQ(replica.server().role(), Role::kReplica);

  // Seed the primary so the replica has a world to bootstrap.
  const std::vector<gmf::Flow> flows = make_flows(campus, 0xA11CE, 6);
  engine::AnalysisEngine mirror(campus.net);
  Client pc = primary.connect();
  for (const gmf::Flow& f : flows) {
    ASSERT_EQ(pc.admit(f).has_value(), mirror.try_admit(f).has_value());
  }
  ASSERT_TRUE(await_caught_up(replica.server(), primary.server().epoch(),
                              primary.server().commit_seq()));

  Client rc = replica.connect();

  // Reads work and match the mirror bit-for-bit.
  const std::vector<gmf::Flow> probes = make_flows(campus, 0xB0B, 3);
  const auto remote = rc.what_if_batch(probes);
  const auto local = mirror.evaluate_batch(probes);
  ASSERT_EQ(remote.size(), local.size());
  for (std::size_t i = 0; i < remote.size(); ++i) {
    EXPECT_EQ(remote[i].admissible, local[i].admissible);
    expect_bit_identical(remote[i].result(), local[i].result(),
                         "replica probe " + std::to_string(i));
  }

  // STATS carries the replication position.
  const StatsResponse stats = rc.stats();
  EXPECT_EQ(stats.role, Role::kReplica);
  EXPECT_EQ(stats.epoch, primary.server().epoch());
  EXPECT_EQ(stats.commit_seq, primary.server().commit_seq());
  EXPECT_EQ(stats.flows, mirror.flow_count());

  // Every mutation bounces with the primary's address attached.
  try {
    (void)rc.admit(probes[0]);
    FAIL() << "replica accepted ADMIT";
  } catch (const NotPrimaryError& e) {
    EXPECT_EQ(e.primary_addr(), "unix:" + primary.path());
  }
  EXPECT_THROW((void)rc.remove(0), NotPrimaryError);
  EXPECT_THROW((void)rc.restore("anything"), NotPrimaryError);

  // ROLE exposes the link state.
  const RoleResponse role = rc.role();
  EXPECT_EQ(role.role, Role::kReplica);
  EXPECT_FALSE(role.fenced);
  EXPECT_EQ(role.primary_addr, "unix:" + primary.path());
  EXPECT_GE(role.full_syncs, 1u);
}

// ------------------------------------------------------------- convergence --

TEST(Replication, DeltaStreamConvergesBitIdenticalToMirror) {
  const Campus campus = make_campus(3, 4);
  TestDaemon primary(campus.net);
  TestDaemon replica(campus.net, replica_config(primary.path()));

  engine::AnalysisEngine mirror(campus.net);
  Client pc = primary.connect();
  const std::vector<gmf::Flow> flows = make_flows(campus, 0xFEED, 10);
  Rng rng(0x1234);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    ASSERT_EQ(pc.admit(flows[i]).has_value(),
              mirror.try_admit(flows[i]).has_value());
    if (i % 4 == 3 && mirror.flow_count() > 1) {
      const auto idx =
          static_cast<std::size_t>(rng.next_below(mirror.flow_count()));
      ASSERT_EQ(pc.remove(idx), mirror.remove_flow(idx));
    }
  }
  ASSERT_TRUE(await_caught_up(replica.server(), primary.server().epoch(),
                              primary.server().commit_seq()));

  Client rc = replica.connect();
  EXPECT_EQ(rc.stats().flows, mirror.flow_count());
  const std::vector<gmf::Flow> probes = make_flows(campus, 0xCAFE, 4);
  const auto remote = rc.what_if_batch(probes);
  const auto local = mirror.evaluate_batch(probes);
  ASSERT_EQ(remote.size(), local.size());
  for (std::size_t i = 0; i < remote.size(); ++i) {
    EXPECT_EQ(remote[i].admissible, local[i].admissible);
    expect_bit_identical(remote[i].result(), local[i].result(),
                         "post-delta probe " + std::to_string(i));
  }
}

// ------------------------------------------------------------ gap recovery --

TEST(Replication, JournalGapForcesFullResyncAndRecovers) {
  const Campus campus = make_campus(2, 4);
  // Tiny journal: anything more than 4 commits behind is a guaranteed gap.
  TestDaemon primary(campus.net, [] {
    ServerConfig cfg;
    cfg.journal_capacity = 4;
    return cfg;
  }());
  TestDaemon replica(campus.net, replica_config(primary.path()));

  engine::AnalysisEngine mirror(campus.net);
  Client pc = primary.connect();
  const std::vector<gmf::Flow> flows = make_flows(campus, 0x6A9, 12);
  ASSERT_EQ(pc.admit(flows[0]).has_value(),
            mirror.try_admit(flows[0]).has_value());
  ASSERT_TRUE(await_caught_up(replica.server(), primary.server().epoch(),
                              primary.server().commit_seq()));

  ReplicationClient* rcli = replica.server().replication_client();
  ASSERT_NE(rcli, nullptr);
  const std::uint64_t syncs_before = rcli->full_syncs();

  // Open a gap: detach the replica, push the journal window far past it.
  rcli->pause();
  for (std::size_t i = 1; i < flows.size(); ++i) {
    ASSERT_EQ(pc.admit(flows[i]).has_value(),
              mirror.try_admit(flows[i]).has_value());
  }
  ASSERT_GT(primary.server().commit_seq(), 4u + replica.server().commit_seq());
  rcli->resume();

  ASSERT_TRUE(await_caught_up(replica.server(), primary.server().epoch(),
                              primary.server().commit_seq()));
  EXPECT_GT(rcli->full_syncs(), syncs_before)
      << "a sequence-gapped replica must recover via full resync";

  Client rc = replica.connect();
  EXPECT_EQ(rc.stats().flows, mirror.flow_count());
  const std::vector<gmf::Flow> probes = make_flows(campus, 0x90A7, 3);
  const auto remote = rc.what_if_batch(probes);
  const auto local = mirror.evaluate_batch(probes);
  for (std::size_t i = 0; i < remote.size(); ++i) {
    EXPECT_EQ(remote[i].admissible, local[i].admissible);
    expect_bit_identical(remote[i].result(), local[i].result(),
                         "post-resync probe " + std::to_string(i));
  }
}

// ----------------------------------------------------------- epoch fencing --

TEST(Replication, PromoteBumpsEpochAndTakesWrites) {
  const Campus campus = make_campus(2, 4);
  TestDaemon primary(campus.net);
  TestDaemon replica(campus.net, replica_config(primary.path()));

  engine::AnalysisEngine mirror(campus.net);
  Client pc = primary.connect();
  const std::vector<gmf::Flow> flows = make_flows(campus, 0xF01, 8);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(pc.admit(flows[static_cast<std::size_t>(i)]).has_value(),
              mirror.try_admit(flows[static_cast<std::size_t>(i)]).has_value());
  }
  ASSERT_TRUE(await_caught_up(replica.server(), 1, 4));

  // Failover: the primary dies, the replica is promoted.
  primary.stop();
  Client rc = replica.connect();
  const std::uint64_t new_epoch = rc.promote();
  EXPECT_EQ(new_epoch, 2u);
  EXPECT_EQ(replica.server().role(), Role::kPrimary);
  EXPECT_FALSE(replica.server().fenced());

  // Idempotent on a live primary: no further epoch burn.
  EXPECT_EQ(rc.promote(), 2u);

  // The promoted daemon takes writes, still bit-identical to the mirror.
  for (std::size_t i = 4; i < flows.size(); ++i) {
    const auto remote = rc.admit(flows[i]);
    const auto local = mirror.try_admit(flows[i]);
    ASSERT_EQ(remote.has_value(), local.has_value());
    if (remote) {
      expect_bit_identical(*remote, *local,
                           "post-promote admit " + std::to_string(i));
    }
  }
  const StatsResponse stats = rc.stats();
  EXPECT_EQ(stats.role, Role::kPrimary);
  EXPECT_EQ(stats.epoch, 2u);
  EXPECT_EQ(stats.flows, mirror.flow_count());
}

TEST(Replication, StaleExPrimaryIsFencedAndRejected) {
  const Campus campus = make_campus(2, 4);
  TestDaemon a(campus.net);  // the original primary (epoch 1)
  TestDaemon b(campus.net, replica_config(a.path()));

  engine::AnalysisEngine mirror(campus.net);
  Client ac = a.connect();
  const std::vector<gmf::Flow> flows = make_flows(campus, 0x5CA1E, 8);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(ac.admit(flows[static_cast<std::size_t>(i)]).has_value(),
              mirror.try_admit(flows[static_cast<std::size_t>(i)]).has_value());
  }
  ASSERT_TRUE(await_caught_up(b.server(), 1, 3));

  // Operator promotes b while a is still alive (the split-brain attempt).
  Client bc = b.connect();
  ASSERT_EQ(bc.promote(), 2u);

  // A new replica of b follows the promoted history...
  TestDaemon c(campus.net, replica_config(b.path()));
  for (std::size_t i = 3; i < 6; ++i) {
    ASSERT_EQ(bc.admit(flows[i]).has_value(),
              mirror.try_admit(flows[i]).has_value());
  }
  ASSERT_TRUE(await_caught_up(c.server(), 2, b.server().commit_seq()));

  // ...and when that replica is repointed at the stale ex-primary, the
  // ex-primary learns of the higher epoch from the subscribe, self-fences
  // and answers NOT_PRIMARY — the replica keeps its promoted history.
  ReplicationClient* ccli = c.server().replication_client();
  ASSERT_NE(ccli, nullptr);
  const std::uint64_t seq_before = c.server().commit_seq();
  Client cc = c.connect();
  (void)cc.repoint("unix:" + a.path());
  const auto deadline = std::chrono::steady_clock::now() + 15s;
  while (!a.server().fenced() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_TRUE(a.server().fenced())
      << "ex-primary must self-fence on seeing a higher-epoch subscriber";
  EXPECT_EQ(c.server().epoch(), 2u) << "no rollback";
  EXPECT_EQ(c.server().commit_seq(), seq_before);

  // The fenced ex-primary now refuses mutations too.
  EXPECT_THROW((void)ac.admit(flows[6]), NotPrimaryError);

  // Point c back at the live primary: the stream resumes cleanly.
  (void)cc.repoint("unix:" + b.path());
  ASSERT_EQ(bc.admit(flows[7]).has_value(),
            mirror.try_admit(flows[7]).has_value());
  ASSERT_TRUE(await_caught_up(c.server(), 2, b.server().commit_seq()));
  Client cfinal = c.connect();
  EXPECT_EQ(cfinal.stats().flows, mirror.flow_count());
}

// A primary that does NOT implement fencing (a buggy or older build)
// must still be unable to roll a promoted replica back: the client side
// of the fence rejects stale subscribe answers and stale deltas on its
// own.  Exercised against a scripted mock primary speaking raw frames.
TEST(Replication, ClientRejectsStaleAnswersFromNonFencingPrimary) {
  Listener listener = Listener::listen_unix(fresh_socket_path());
  std::atomic<bool> mock_stop{false};
  std::atomic<int> sessions{0};
  std::thread mock([&] {
    while (!mock_stop.load(std::memory_order_acquire)) {
      Socket peer = listener.accept(100);
      if (!peer.valid()) continue;
      const int session = sessions.fetch_add(1);
      try {
        std::optional<std::string> frame = recv_frame(peer);
        if (!frame) continue;
        (void)decode_request(*frame);  // the SUBSCRIBE
        if (session == 0) {
          // Stale full sync: epoch 1 against a replica at epoch 3.
          SyncFullResponse full;
          full.epoch = 1;
          full.commit_seq = 7;
          full.history = 0xBAD;
          send_frame(peer, encode_response(Response{full}));
        } else {
          // Journal catch-up accepted at the replica's exact position,
          // followed by a delta stamped with a stale epoch.
          send_frame(peer,
                     encode_response(Response{SubscribeResponse{3, 5}}));
          DeltaResponse delta;
          delta.kind = DeltaKind::kRemove;
          delta.epoch = 1;
          delta.seq = 5;
          delta.index = 0;
          send_frame(peer, encode_response(Response{delta}));
          // Hold the stream open until the client reacts and drops it.
          std::string sink;
          (void)recv_frame_idle(peer, sink, 100);
        }
      } catch (const std::exception&) {
        // A dropped mock connection is fine — the client reconnects.
      }
    }
  });

  ReplicationClientConfig cfg;
  cfg.primary_addr = "unix:" + listener.unix_path();
  cfg.backoff_initial_ms = 5;
  cfg.backoff_max_ms = 20;
  cfg.backoff_seed = 7;
  std::atomic<bool> full_sync_applied{false};
  std::atomic<std::uint64_t> applied{0};
  ReplicationHooks hooks;
  hooks.full_sync = [&](const SyncFullResponse&) {
    full_sync_applied.store(true);
  };
  hooks.apply = [&](const DeltaResponse& d) {
    if (d.epoch < 3) return ApplyResult::kStale;
    applied.fetch_add(1);
    return ApplyResult::kApplied;
  };
  hooks.position = [] { return ReplicaPosition{3, 5, 0xFEED}; };
  hooks.stopped = [] { return false; };
  ReplicationClient client(cfg, std::move(hooks));
  client.start();

  const auto deadline = std::chrono::steady_clock::now() + 15s;
  while (client.stale_rejects() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  client.stop();
  mock_stop.store(true, std::memory_order_release);
  mock.join();

  EXPECT_GE(client.stale_rejects(), 2u)
      << "stale full sync and stale delta must both be rejected";
  EXPECT_FALSE(full_sync_applied.load())
      << "a stale checkpoint must never be installed";
  EXPECT_EQ(applied.load(), 0u);
}

}  // namespace
}  // namespace gmfnet::rpc
