#include "gmf/trace_fit.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace gmfnet::gmf {
namespace {

/// Synthesizes a trace from a repeating size pattern with per-packet
/// separation wobble (>= the nominal separation, as GMF allows).
std::vector<TracePacket> make_trace(const std::vector<ethernet::Bits>& sizes,
                                    gmfnet::Time nominal_sep, int cycles,
                                    double wobble, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TracePacket> trace;
  gmfnet::Time t = gmfnet::Time::zero();
  for (int c = 0; c < cycles; ++c) {
    for (const ethernet::Bits s : sizes) {
      trace.push_back(TracePacket{t, s});
      const double mult = 1.0 + rng.uniform01() * wobble;
      t += gmfnet::Time(static_cast<gmfnet::Time::rep>(
          static_cast<double>(nominal_sep.ps()) * mult));
    }
  }
  return trace;
}

const std::vector<ethernet::Bits> kMpegSizes = {
    16000 * 8, 1500 * 8, 1500 * 8, 4000 * 8, 1500 * 8,
    1500 * 8,  4000 * 8, 1500 * 8, 1500 * 8};  // I+P B B P B B P B B

TEST(TraceFit, DetectsMpegCycleLength) {
  const auto trace =
      make_trace(kMpegSizes, gmfnet::Time::ms(30), 6, 0.05, 1);
  const CycleDetection det = detect_cycle(trace);
  EXPECT_EQ(det.cycle_length, 9u);
  EXPECT_DOUBLE_EQ(det.residual, 0.0);  // sizes perfectly periodic
}

TEST(TraceFit, SporadicTrafficDetectsAsCycleOne) {
  // Constant-size packets: no length beats n=1.
  const auto trace = make_trace({160 * 8}, gmfnet::Time::ms(20), 40, 0.3, 2);
  EXPECT_EQ(detect_cycle(trace).cycle_length, 1u);
}

TEST(TraceFit, RandomSizesDetectAsCycleOne) {
  // Uncorrelated random sizes: folding cannot help substantially.
  Rng rng(3);
  std::vector<TracePacket> trace;
  gmfnet::Time t = gmfnet::Time::zero();
  for (int i = 0; i < 200; ++i) {
    trace.push_back(TracePacket{t, rng.uniform_i64(1, 1500) * 8});
    t += gmfnet::Time::ms(10);
  }
  EXPECT_EQ(detect_cycle(trace).cycle_length, 1u);
}

TEST(TraceFit, DoesNotPickMultipleOfTrueCycle) {
  const auto trace = make_trace({8000, 800, 800}, gmfnet::Time::ms(10), 12,
                                0.0, 4);
  // n = 3, 6, 9 ... all fold perfectly; parsimony must choose 3.
  EXPECT_EQ(detect_cycle(trace).cycle_length, 3u);
}

TEST(TraceFit, ShortTracesFallBackGracefully) {
  EXPECT_EQ(detect_cycle({}).cycle_length, 1u);
  const std::vector<TracePacket> one = {{gmfnet::Time::zero(), 800}};
  EXPECT_EQ(detect_cycle(one).cycle_length, 1u);
}

TEST(TraceFit, FitSlotsExtractsSoundParameters) {
  const auto trace =
      make_trace(kMpegSizes, gmfnet::Time::ms(30), 5, 0.10, 5);
  const auto slots = fit_slots(trace, 9);
  ASSERT_EQ(slots.size(), 9u);
  for (std::size_t k = 0; k < 9; ++k) {
    // Max payload equals the pattern's size (no size noise here).
    EXPECT_EQ(slots[k].max_payload, kMpegSizes[k]);
    // Min separation is >= nominal (wobble only adds) and reasonably near.
    EXPECT_GE(slots[k].min_separation, gmfnet::Time::ms(30));
    EXPECT_LE(slots[k].min_separation, gmfnet::Time::ms(34));
    EXPECT_GE(slots[k].samples, 4u);
  }
}

TEST(TraceFit, FitSlotsRejectsBadInput) {
  const auto trace = make_trace({800}, gmfnet::Time::ms(10), 3, 0.0, 6);
  EXPECT_THROW(fit_slots(trace, 0), std::invalid_argument);
  EXPECT_THROW(fit_slots(trace, trace.size()), std::invalid_argument);
  std::vector<TracePacket> bad = trace;
  bad[1].timestamp = bad[0].timestamp;  // not strictly increasing
  EXPECT_THROW(fit_slots(bad, 1), std::invalid_argument);
}

TEST(TraceFit, FittedFlowIsAnalyzableAndSound) {
  const auto star = net::make_star_network(4, 10'000'000);
  const net::Route route({star.hosts[0], star.sw, star.hosts[1]});
  const auto trace =
      make_trace(kMpegSizes, gmfnet::Time::ms(30), 6, 0.05, 7);
  const Flow flow = fit_gmf_flow(trace, "fitted", route,
                                 /*deadline=*/gmfnet::Time::ms(100));
  EXPECT_EQ(flow.frame_count(), 9u);
  EXPECT_NO_THROW(flow.validate(star.net));
  // Fitted parameters reproduce the generator's shape.
  EXPECT_EQ(flow.frame(0).payload_bits, kMpegSizes[0]);
  EXPECT_GE(flow.tsum(), gmfnet::Time::ms(270));
}

TEST(TraceFit, FittedFlowConservativeForTraceReplay) {
  // Every observed separation >= fitted minimum and every observed size
  // <= fitted maximum: the fitted GMF flow admits the trace as one of its
  // legal behaviours (slot-aligned by construction).
  const auto trace =
      make_trace(kMpegSizes, gmfnet::Time::ms(30), 8, 0.2, 8);
  const auto slots = fit_slots(trace, 9);
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    const auto& slot = slots[i % 9];
    EXPECT_GE(trace[i + 1].timestamp - trace[i].timestamp,
              slot.min_separation);
    EXPECT_LE(trace[i].payload_bits, slot.max_payload);
  }
}

}  // namespace
}  // namespace gmfnet::gmf
