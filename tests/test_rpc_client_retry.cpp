// Client retry-policy contracts (rpc::Client resilience):
//
//  * The backoff schedule is deterministic under a seeded jitter stream
//    and every delay lies in [capped/2, capped] for
//    capped = min(initial << attempt, max(max, initial)) — the cap holds
//    for arbitrarily large attempt numbers (no shift overflow).
//
//  * Idempotent requests retry exactly max_retries times after transport
//    failures and then surface the error: against a daemon that accepts
//    and drops every connection, a call with max_retries = N costs
//    exactly N + 1 connections.
//
//  * Mutations are NEVER replayed: a daemon that dies after reading an
//    ADMIT/REMOVE sees that frame exactly once no matter how many
//    retries the config allows, and the client surfaces TransportError.
//
//  * Under seeded fault injection (PR 7 injector) idempotent probes
//    transparently survive connection resets and still return verdicts
//    bit-identical to an in-process mirror.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/analysis_engine.hpp"
#include "net/topology.hpp"
#include "rpc/client.hpp"
#include "rpc/fault_injection.hpp"
#include "rpc/server.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::rpc {
namespace {

using namespace std::chrono_literals;

constexpr ethernet::LinkSpeedBps kSpeed = 100'000'000;

std::string fresh_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/gmfnet_retry_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Star network with `hosts` end hosts on one switch.
net::Network make_star(int hosts, std::vector<net::NodeId>& host_ids,
                       net::NodeId& sw) {
  net::Network net;
  sw = net.add_switch("sw");
  for (int h = 0; h < hosts; ++h) {
    const net::NodeId id = net.add_endhost("h" + std::to_string(h));
    net.add_duplex_link(id, sw, kSpeed);
    host_ids.push_back(id);
  }
  return net;
}

// ------------------------------------------------------- backoff schedule --

TEST(ClientBackoff, DelaysStayWithinCappedJitterBounds) {
  ClientConfig cfg;
  cfg.backoff_initial_ms = 20;
  cfg.backoff_max_ms = 2'000;
  Rng jitter(0x5EED);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::int64_t uncapped =
        attempt >= 20 ? cfg.backoff_max_ms
                      : std::min<std::int64_t>(
                            static_cast<std::int64_t>(cfg.backoff_initial_ms)
                                << attempt,
                            cfg.backoff_max_ms);
    const std::int64_t capped = std::min<std::int64_t>(
        uncapped, std::max(cfg.backoff_max_ms, cfg.backoff_initial_ms));
    const std::int64_t d = Client::backoff_delay_ms(cfg, attempt, jitter);
    EXPECT_GE(d, capped / 2) << "attempt " << attempt;
    EXPECT_LE(d, capped) << "attempt " << attempt;
  }
}

TEST(ClientBackoff, ScheduleIsDeterministicUnderSeededJitter) {
  ClientConfig cfg;
  cfg.backoff_initial_ms = 10;
  cfg.backoff_max_ms = 500;
  Rng a(42), b(42), c(43);
  bool any_difference = false;
  for (int attempt = 0; attempt < 32; ++attempt) {
    const std::int64_t da = Client::backoff_delay_ms(cfg, attempt, a);
    EXPECT_EQ(da, Client::backoff_delay_ms(cfg, attempt, b))
        << "attempt " << attempt;
    if (da != Client::backoff_delay_ms(cfg, attempt, c)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference) << "different seeds must jitter differently";
}

TEST(ClientBackoff, DegenerateConfigsDoNotUnderflowOrOverflow) {
  ClientConfig cfg;
  cfg.backoff_initial_ms = 0;
  cfg.backoff_max_ms = 0;
  Rng jitter(1);
  EXPECT_EQ(Client::backoff_delay_ms(cfg, 0, jitter), 0);
  EXPECT_EQ(Client::backoff_delay_ms(cfg, 1000, jitter), 0);

  // initial > max: the documented cap is max(max, initial).
  cfg.backoff_initial_ms = 100;
  cfg.backoff_max_ms = 10;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::int64_t d = Client::backoff_delay_ms(cfg, attempt, jitter);
    EXPECT_GE(d, 50);
    EXPECT_LE(d, 100);
  }
}

// ----------------------------------------------------------- retry budget --

/// A daemon stand-in that accepts every connection and immediately
/// applies `on_connection` (close, read-then-close, ...), counting them.
class MockDaemon {
 public:
  using Handler = std::function<void(Socket&)>;

  explicit MockDaemon(Handler handler)
      : listener_(Listener::listen_unix(fresh_socket_path())),
        handler_(std::move(handler)),
        thread_([this] { run(); }) {}

  ~MockDaemon() {
    stop_.store(true, std::memory_order_release);
    thread_.join();
  }

  [[nodiscard]] const std::string& path() const {
    return listener_.unix_path();
  }
  [[nodiscard]] int connections() const {
    return connections_.load(std::memory_order_acquire);
  }

 private:
  void run() {
    while (!stop_.load(std::memory_order_acquire)) {
      Socket peer = listener_.accept(50);
      if (!peer.valid()) continue;
      connections_.fetch_add(1, std::memory_order_acq_rel);
      try {
        handler_(peer);
      } catch (const std::exception&) {
        // A handler that loses its peer mid-frame is part of the script.
      }
    }
  }

  Listener listener_;
  Handler handler_;
  std::atomic<bool> stop_{false};
  std::atomic<int> connections_{0};
  std::thread thread_;
};

TEST(ClientRetry, IdempotentRequestsStopAtConfiguredAttemptCount) {
  // Every connection is dropped without an answer: the client must spend
  // exactly 1 + max_retries connections, then surface the failure.
  MockDaemon daemon([](Socket& peer) {
    std::optional<std::string> frame = recv_frame(peer);
    (void)frame;  // read the request, answer nothing, close
  });

  ClientConfig cfg;
  cfg.max_retries = 3;
  cfg.backoff_initial_ms = 1;
  cfg.backoff_max_ms = 5;
  cfg.backoff_seed = 99;
  Client client = Client::connect_unix(daemon.path(), cfg);
  EXPECT_THROW((void)client.stats(), TransportError);
  EXPECT_EQ(daemon.connections(), 1 + cfg.max_retries);
  EXPECT_EQ(client.retries_performed(), 3u);

  // A second call starts a fresh budget.
  EXPECT_THROW((void)client.stats(), TransportError);
  EXPECT_EQ(daemon.connections(), 2 * (1 + cfg.max_retries));
}

TEST(ClientRetry, ZeroRetriesFailsOnFirstTransportError) {
  MockDaemon daemon([](Socket& peer) { (void)recv_frame(peer); });
  ClientConfig cfg;  // max_retries = 0
  Client client = Client::connect_unix(daemon.path(), cfg);
  EXPECT_THROW((void)client.stats(), TransportError);
  EXPECT_EQ(daemon.connections(), 1);
  EXPECT_EQ(client.retries_performed(), 0u);
}

TEST(ClientRetry, MutationsAreNeverReplayed) {
  // The daemon dies after *reading* each mutation — the most dangerous
  // moment: the client cannot know whether the commit happened.  The
  // frame must be sent exactly once even with a generous retry budget.
  std::atomic<int> frames_read{0};
  MockDaemon daemon([&](Socket& peer) {
    if (recv_frame(peer).has_value()) {
      frames_read.fetch_add(1, std::memory_order_acq_rel);
    }
  });

  ClientConfig cfg;
  cfg.max_retries = 5;
  cfg.backoff_initial_ms = 1;
  cfg.backoff_max_ms = 5;
  Client client = Client::connect_unix(daemon.path(), cfg);

  std::vector<net::NodeId> hosts;
  net::NodeId sw{};
  const net::Network net = make_star(2, hosts, sw);
  const gmf::Flow flow = workload::make_voip_flow(
      "call", net::Route({hosts[0], sw, hosts[1]}));

  EXPECT_THROW((void)client.admit(flow), TransportError);
  EXPECT_EQ(frames_read.load(), 1) << "ADMIT must not be replayed";
  EXPECT_EQ(client.retries_performed(), 0u);

  EXPECT_THROW((void)client.remove(0), TransportError);
  EXPECT_EQ(frames_read.load(), 2) << "REMOVE must not be replayed";
  EXPECT_EQ(client.retries_performed(), 0u);
}

// ------------------------------------------------- retries under injection --

TEST(ClientRetry, SeededFaultsAreSurvivedByIdempotentProbes) {
  std::vector<net::NodeId> hosts;
  net::NodeId sw{};
  const net::Network net = make_star(4, hosts, sw);
  auto engine = std::make_shared<engine::AnalysisEngine>(net);
  engine::AnalysisEngine mirror(net);

  ServerConfig scfg;
  scfg.unix_path = fresh_socket_path();
  Server server(engine, scfg);
  std::thread serve_thread([&] { server.serve(); });

  // Seed the worlds over a clean wire first; only the probes run under
  // injection (mutations are never retried, so a faulted admit would
  // need out-of-band repair and muddy the assertion).
  const gmf::Flow resident = workload::make_voip_flow(
      "resident", net::Route({hosts[0], sw, hosts[1]}));
  ASSERT_TRUE(mirror.try_admit(resident).has_value());
  {
    Client seeder = Client::connect_unix(server.unix_path());
    ASSERT_TRUE(seeder.admit(resident).has_value());
  }

  FaultProfile profile;
  profile.seed = 0xD15EA5E;
  profile.reset = 0.10;
  profile.short_io = 0.20;
  profile.eintr = 0.10;
  FaultInjector injector(profile);
  {
    // Injector on the client thread only: the daemon's syscalls stay
    // honest, the client's wire is hostile.
    ScopedFaultInjection scoped(injector);
    ClientConfig cfg;
    cfg.max_retries = 64;
    cfg.backoff_initial_ms = 1;
    cfg.backoff_max_ms = 10;
    cfg.backoff_seed = 0xB0FF;
    Client client = Client::connect_unix(server.unix_path(), cfg);

    const gmf::Flow probe = workload::make_voip_flow(
        "probe", net::Route({hosts[2], sw, hosts[3]}));
    const std::vector<gmf::Flow> cands(8, probe);
    const auto local = mirror.evaluate_batch(cands);
    for (int round = 0; round < 25; ++round) {
      const auto remote = client.what_if_batch(cands);
      ASSERT_EQ(remote.size(), local.size());
      for (std::size_t i = 0; i < remote.size(); ++i) {
        ASSERT_EQ(remote[i].admissible, local[i].admissible)
            << "round " << round << " candidate " << i;
        ASSERT_TRUE(remote[i].result().jitters == local[i].result().jitters)
            << "round " << round << " candidate " << i;
      }
    }
    EXPECT_GT(client.retries_performed(), 0u)
        << "the fault storm never tripped a retry — raise the rates";
  }

  server.request_stop();
  serve_thread.join();
}

}  // namespace
}  // namespace gmfnet::rpc
