// Tests of the holistic jitter fixed point (§3.5).
#include "core/holistic.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::core {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 10'000'000;

/// Base options honoring the GMFNET_SOLVER CI toggle: the sanitizer jobs
/// re-run this suite with Anderson forced on, and every result must be
/// bit-identical by the solver contract (the workloads here have acyclic
/// interference, so the accelerated fixed point is provably the same).
HolisticOptions env_opts() {
  HolisticOptions o;
  o.solver = solver_options_from_env();
  return o;
}

TEST(Holistic, LoneFlowConvergesInTwoSweeps) {
  const auto star = net::make_star_network(4, kSpeed);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "a", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(20), gmfnet::Time::ms(20), 1000 * 8)};
  const AnalysisContext ctx(star.net, flows);
  const HolisticResult r = analyze_holistic(ctx, env_opts());
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.schedulable);
  // Sweep 1 installs the stage jitters, sweep 2 observes no change.
  EXPECT_EQ(r.sweeps, 2);
  ASSERT_EQ(r.flows.size(), 1u);
  EXPECT_TRUE(r.flows[0].schedulable());
}

TEST(Holistic, Figure2ScenarioSchedulable) {
  const auto s = workload::make_figure2_scenario(kSpeed, true);
  const AnalysisContext ctx(s.network, s.flows);
  const HolisticResult r = analyze_holistic(ctx, env_opts());
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.schedulable);
  for (std::size_t f = 0; f < ctx.flow_count(); ++f) {
    EXPECT_TRUE(r.flows[f].all_converged()) << "flow " << f;
  }
}

TEST(Holistic, GaussSeidelAndJacobiAgreeOnFixedPoint) {
  const auto s = workload::make_figure2_scenario(kSpeed, true);
  const AnalysisContext ctx(s.network, s.flows);
  HolisticOptions gs = env_opts();
  gs.order = SweepOrder::kGaussSeidel;
  HolisticOptions jc = env_opts();
  jc.order = SweepOrder::kJacobi;
  jc.threads = 4;
  const HolisticResult rg = analyze_holistic(ctx, gs);
  const HolisticResult rj = analyze_holistic(ctx, jc);
  ASSERT_TRUE(rg.converged);
  ASSERT_TRUE(rj.converged);
  // Same least fixed point -> identical jitters and response bounds.
  EXPECT_EQ(rg.jitters, rj.jitters);
  for (std::size_t f = 0; f < ctx.flow_count(); ++f) {
    for (std::size_t k = 0; k < ctx.flow(FlowId(static_cast<std::int32_t>(f)))
                                    .frame_count();
         ++k) {
      EXPECT_EQ(rg.flows[f].frames[k].response,
                rj.flows[f].frames[k].response)
          << "flow " << f << " frame " << k;
    }
  }
  // Jacobi may need more sweeps, never fewer.
  EXPECT_GE(rj.sweeps, rg.sweeps);
}

TEST(Holistic, BoundsAreMonotoneInLoad) {
  // Same flow, analysed alone vs. with cross traffic: the holistic bound
  // with competitors must dominate.
  const auto quiet = workload::make_figure2_scenario(kSpeed, false);
  const auto busy = workload::make_figure2_scenario(kSpeed, true);
  const HolisticResult rq =
      analyze_holistic(AnalysisContext(quiet.network, quiet.flows));
  const HolisticResult rb =
      analyze_holistic(AnalysisContext(busy.network, busy.flows));
  ASSERT_TRUE(rq.converged);
  ASSERT_TRUE(rb.converged);
  EXPECT_GT(rb.worst_response(FlowId(0)), rq.worst_response(FlowId(0)));
}

TEST(Holistic, JitterPropagatesDownstream) {
  const auto s = workload::make_figure2_scenario(kSpeed, false);
  const AnalysisContext ctx(s.network, s.flows);
  const HolisticResult r = analyze_holistic(ctx, env_opts());
  ASSERT_TRUE(r.converged);
  const auto& stages = ctx.stages(FlowId(0));
  // Jitter strictly accumulates along the pipeline for every frame.
  for (std::size_t k = 0; k < 9; ++k) {
    gmfnet::Time prev = gmfnet::Time(-1);
    for (const StageKey& st : stages) {
      const gmfnet::Time j = r.jitters.jitter(FlowId(0), st, k);
      EXPECT_GT(j, prev);
      prev = j;
    }
  }
}

TEST(Holistic, UnschedulableOverloadReported) {
  const auto star = net::make_star_network(4, kSpeed);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "over", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(2), gmfnet::Time::ms(2), 15000 * 8)};
  const AnalysisContext ctx(star.net, flows);
  const HolisticResult r = analyze_holistic(ctx, env_opts());
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.schedulable);
}

TEST(Holistic, DeadlineMissWithoutDivergence) {
  const auto star = net::make_star_network(4, kSpeed);
  // Feasible load but a deadline below the floor MFT+CIRC costs.
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "tight", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(20), gmfnet::Time::ms(1), 1000 * 8)};
  const AnalysisContext ctx(star.net, flows);
  const HolisticResult r = analyze_holistic(ctx, env_opts());
  EXPECT_TRUE(r.converged);       // analysis converges fine...
  EXPECT_FALSE(r.schedulable);    // ...but the deadline is missed
}

TEST(Holistic, WorstResponseAccessor) {
  const auto s = workload::make_figure2_scenario(kSpeed, false);
  const AnalysisContext ctx(s.network, s.flows);
  const HolisticResult r = analyze_holistic(ctx, env_opts());
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.worst_response(FlowId(0)), r.flows[0].worst_response());
  EXPECT_GT(r.worst_response(FlowId(0)), gmfnet::Time::zero());
}

TEST(Holistic, ManyIndependentFlowsStillTwoSweeps) {
  // Flows that share nothing have no cross-jitter: the fixed point arrives
  // after one productive sweep.
  const auto star = net::make_star_network(8, kSpeed);
  std::vector<gmf::Flow> flows;
  for (int i = 0; i < 4; ++i) {
    flows.push_back(gmf::make_sporadic_flow(
        "f" + std::to_string(i),
        net::Route({star.hosts[static_cast<std::size_t>(2 * i)], star.sw,
                    star.hosts[static_cast<std::size_t>(2 * i + 1)]}),
        gmfnet::Time::ms(20), gmfnet::Time::ms(20), 1000 * 8));
  }
  const AnalysisContext ctx(star.net, flows);
  const HolisticResult r = analyze_holistic(ctx, env_opts());
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.sweeps, 2);
}

}  // namespace
}  // namespace gmfnet::core
