// ProbeScratch contracts (engine/snapshot.hpp):
//
//  * Bit-identity: what_if with a reused scratch returns exactly what the
//    scratch-free probe and a from-scratch whole-set run return — same
//    verdict, same fixed-point jitters, same per-flow bounds — including
//    repeated candidates (cache hits), candidates bridging shards (multi-
//    entry bases), and more distinct shard subsets than the scratch holds
//    (LRU eviction and rebuild).
//
//  * Republish safety: a scratch outlives snapshots.  After the writer
//    mutates and republishes, stale entries are detected by pinned-pointer
//    identity and rebuilt; probes against the new snapshot stay correct.
//
//  * Lean results: WhatIfResult's cheap accessors (converged, sweeps,
//    flow_count, flow_result, worst_response) agree with the lazily
//    materialized full result().
//
//  * Concurrent reuse: one scratch per reader thread across hundreds of
//    probes interleaved with writer mutations/republishes stays correct
//    (and TSan-clean — this binary runs under the TSan CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "engine/analysis_engine.hpp"
#include "net/topology.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::engine {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 100'000'000;

core::HolisticResult from_scratch(const net::Network& net,
                                  const std::vector<gmf::Flow>& flows) {
  const core::AnalysisContext ctx(net, flows);
  return core::analyze_holistic(ctx);
}

void expect_bit_identical(const core::HolisticResult& inc,
                          const core::HolisticResult& cold,
                          const std::string& where) {
  ASSERT_EQ(inc.converged, cold.converged) << where;
  ASSERT_EQ(inc.schedulable, cold.schedulable) << where;
  if (!inc.converged) return;
  EXPECT_TRUE(inc.jitters == cold.jitters)
      << where << ": jitter fixed points differ";
  ASSERT_EQ(inc.flows.size(), cold.flows.size()) << where;
  for (std::size_t f = 0; f < inc.flows.size(); ++f) {
    const core::FlowId id(static_cast<std::int32_t>(f));
    EXPECT_EQ(inc.worst_response(id), cold.worst_response(id))
        << where << ": flow " << f;
  }
}

/// `cells` independent stars -> several locality domains by construction.
struct Campus {
  net::Network net;
  std::vector<net::NodeId> hosts;  // cell-major
  std::vector<net::NodeId> switches;
};

Campus make_campus(int cells, int hosts_per_cell) {
  Campus c;
  for (int cell = 0; cell < cells; ++cell) {
    const net::NodeId sw = c.net.add_switch("sw" + std::to_string(cell));
    c.switches.push_back(sw);
    for (int h = 0; h < hosts_per_cell; ++h) {
      const net::NodeId host = c.net.add_endhost(
          "c" + std::to_string(cell) + "h" + std::to_string(h));
      c.net.add_duplex_link(host, sw, kSpeed);
      c.hosts.push_back(host);
    }
  }
  return c;
}

gmf::Flow voip(const Campus& campus, int cell, std::size_t a, std::size_t b,
               const std::string& name) {
  const std::size_t base = static_cast<std::size_t>(cell) * 6;
  return workload::make_voip_flow(
      name,
      net::Route({campus.hosts[base + a],
                  campus.switches[static_cast<std::size_t>(cell)],
                  campus.hosts[base + b]}));
}

/// Compares a scratch probe against the scratch-free probe AND cold truth.
void expect_probe_matches(const EngineSnapshot& snap, const gmf::Flow& cand,
                          ProbeScratch& scratch, const net::Network& net,
                          const std::string& where) {
  const WhatIfResult with = snap.what_if(cand, scratch);
  const WhatIfResult without = snap.what_if(cand);
  EXPECT_EQ(with.admissible, without.admissible) << where;
  EXPECT_EQ(with.converged(), without.converged()) << where;
  EXPECT_EQ(with.flow_count(), without.flow_count()) << where;
  expect_bit_identical(with.result(), without.result(),
                       where + " scratch vs scratch-free");

  std::vector<gmf::Flow> all = snap.flows();
  all.push_back(cand);
  expect_bit_identical(with.result(), from_scratch(net, all),
                       where + " scratch vs cold truth");
}

TEST(ProbeScratch, ReuseBitIdenticalAcrossCandidatesAndHits) {
  // 2 cells x 6 hosts; three disjoint resident pairs per cell -> 6 shards.
  const Campus campus = make_campus(2, 6);
  AnalysisEngine eng(campus.net);
  for (int cell = 0; cell < 2; ++cell) {
    for (std::size_t p = 0; p < 3; ++p) {
      eng.add_flow(voip(campus, cell, 2 * p, 2 * p + 1,
                        "r" + std::to_string(cell) + std::to_string(p)));
    }
  }
  const auto snap = eng.snapshot();
  ASSERT_EQ(snap->shard_count(), 6u);

  ProbeScratch scratch;
  int n = 0;
  // Single-shard candidates (same host pair as a resident), candidates
  // bridging two shards of a cell, and repeats of each (scratch hits).
  for (int round = 0; round < 2; ++round) {
    for (int cell = 0; cell < 2; ++cell) {
      expect_probe_matches(*snap, voip(campus, cell, 0, 1, "solo"), scratch,
                           campus.net, "solo #" + std::to_string(n++));
      expect_probe_matches(*snap, voip(campus, cell, 1, 2, "bridge"), scratch,
                           campus.net, "bridge #" + std::to_string(n++));
      expect_probe_matches(*snap, voip(campus, cell, 0, 5, "span"), scratch,
                           campus.net, "span #" + std::to_string(n++));
    }
  }
  // More distinct touched-shard subsets than kMaxEntries: pairs (a, a+1)
  // for a in 0..4 per cell gives 10 bridge combinations -> LRU eviction.
  for (int cell = 0; cell < 2; ++cell) {
    for (std::size_t a = 0; a + 1 < 6; ++a) {
      expect_probe_matches(*snap, voip(campus, cell, a, a + 1, "evict"),
                           scratch, campus.net,
                           "evict #" + std::to_string(n++));
    }
  }
  EXPECT_EQ(eng.flow_count(), 6u);  // probes committed nothing
}

TEST(ProbeScratch, SurvivesRepublishAndEngineChurn) {
  const Campus campus = make_campus(2, 6);
  AnalysisEngine eng(campus.net);
  eng.add_flow(voip(campus, 0, 0, 1, "a"));
  eng.add_flow(voip(campus, 1, 0, 1, "b"));

  ProbeScratch scratch;
  const gmf::Flow cand = voip(campus, 0, 2, 3, "cand");
  {
    const auto snap = eng.snapshot();
    expect_probe_matches(*snap, cand, scratch, campus.net, "before churn");
  }

  // Mutate + republish: entries keyed on the old shard state must be
  // detected stale (pointer identity) and rebuilt, not reused.
  eng.add_flow(voip(campus, 0, 0, 1, "a2"));
  ASSERT_TRUE(eng.remove_flow(1));  // drop "b"
  {
    const auto snap = eng.snapshot();
    expect_probe_matches(*snap, cand, scratch, campus.net, "after churn");
  }

  // The same scratch also serves a completely different engine.
  AnalysisEngine other(campus.net);
  other.add_flow(voip(campus, 0, 2, 3, "x"));
  {
    const auto snap = other.snapshot();
    expect_probe_matches(*snap, voip(campus, 0, 3, 4, "y"), scratch,
                         campus.net, "other engine");
  }
}

TEST(ProbeScratch, TryAdmitWithWarmScratchMatchesMirror) {
  // try_admit reuses the engine's writer scratch across admissions; every
  // accepted state must stay bit-identical to a mirror engine and to cold
  // truth (the commit path moves the cached base out of the scratch).
  const Campus campus = make_campus(2, 6);
  AnalysisEngine eng(campus.net);
  AnalysisEngine mirror(campus.net);
  std::vector<gmf::Flow> accepted;

  std::vector<gmf::Flow> arrivals;
  for (int cell = 0; cell < 2; ++cell) {
    for (std::size_t a = 0; a + 1 < 6; ++a) {
      arrivals.push_back(voip(campus, cell, a, a + 1,
                              "f" + std::to_string(cell) +
                                  std::to_string(a)));
    }
  }
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto got = eng.try_admit(arrivals[i]);
    if (got.has_value()) {
      mirror.add_flow(arrivals[i]);
      accepted.push_back(arrivals[i]);
      expect_bit_identical(*got, mirror.evaluate(),
                           "admit " + std::to_string(i) + " vs mirror");
      expect_bit_identical(*got, from_scratch(campus.net, accepted),
                           "admit " + std::to_string(i) + " vs cold");
    } else {
      EXPECT_FALSE(from_scratch(campus.net, [&] {
                     std::vector<gmf::Flow> with = accepted;
                     with.push_back(arrivals[i]);
                     return with;
                   }()).schedulable)
          << "rejection " << i << " disagrees with cold truth";
    }
  }
  EXPECT_EQ(eng.flow_count(), accepted.size());
}

TEST(ProbeScratch, CheapAccessorsMatchMaterializedResult) {
  const Campus campus = make_campus(2, 6);
  AnalysisEngine eng(campus.net);
  for (int cell = 0; cell < 2; ++cell) {
    eng.add_flow(voip(campus, cell, 0, 1, "r" + std::to_string(cell)));
  }
  const auto snap = eng.snapshot();

  ProbeScratch scratch;
  const WhatIfResult w =
      snap->what_if(voip(campus, 0, 2, 3, "cand"), scratch);
  const core::HolisticResult& full = w.result();
  EXPECT_EQ(w.converged(), full.converged);
  EXPECT_EQ(w.sweeps(), full.sweeps);
  EXPECT_EQ(w.admissible, full.schedulable);
  ASSERT_EQ(w.flow_count(), full.flows.size());
  for (std::size_t f = 0; f < full.flows.size(); ++f) {
    const core::FlowId id(static_cast<std::int32_t>(f));
    // Both dirty (candidate component) and clean (shared published) flows.
    EXPECT_EQ(w.worst_response(id), full.worst_response(id)) << "flow " << f;
    EXPECT_EQ(w.flow_result(id).worst_response(),
              full.flows[f].worst_response())
        << "flow " << f;
  }
}

TEST(ProbeScratch, ConcurrentReadersReuseScratchUnderWriterChurn) {
  // Each reader thread reuses ONE scratch across hundreds of probes while
  // the writer admits/removes and republishes.  Every probe is checked
  // against the scratch-free probe on the same snapshot; a sample is also
  // checked against a cold from-scratch solve of the snapshot's own flow
  // list.  Run under TSan in CI.
  const Campus campus = make_campus(3, 6);
  const auto flow_for = [&](int n, const std::string& prefix) {
    const int cell = n % 3;
    const std::size_t a = static_cast<std::size_t>(n % 5);
    return voip(campus, cell, a, a + 1, prefix + std::to_string(n));
  };

  AnalysisEngine eng(campus.net);
  for (int n = 0; n < 6; ++n) eng.add_flow(flow_for(n, "seed"));
  (void)eng.evaluate();

  std::atomic<bool> stop{false};
  std::atomic<int> probes_ok{0};
  std::atomic<int> probes_bad{0};

  constexpr int kReaders = 4;
  constexpr int kMinProbesPerReader = 150;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      ProbeScratch scratch;  // reused across every probe of this reader
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = eng.published();
        const gmf::Flow cand = flow_for(100 + (r * 7 + i) % 13, "probe");
        const WhatIfResult w = snap->what_if(cand, scratch);
        bool ok = true;
        if (i % 4 == 0) {
          // Cold truth for the very flow set this snapshot holds.
          std::vector<gmf::Flow> with = snap->flows();
          with.push_back(cand);
          const core::HolisticResult cold = from_scratch(campus.net, with);
          ok = w.converged() == cold.converged &&
               w.admissible == cold.schedulable &&
               w.flow_count() == cold.flows.size() &&
               (!cold.converged || w.result().jitters == cold.jitters);
        } else {
          const WhatIfResult ref = snap->what_if(cand);
          ok = w.admissible == ref.admissible &&
               w.converged() == ref.converged() &&
               w.flow_count() == ref.flow_count() &&
               (!w.converged() ||
                w.result().jitters == ref.result().jitters);
        }
        (ok ? probes_ok : probes_bad).fetch_add(1,
                                                std::memory_order_relaxed);
        ++i;
      }
    });
  }

  // Writer: churn admissions/removals across the domains, republishing
  // after each, then keep the readers alive until each has landed enough
  // probes to have cycled its scratch through many republishes.
  for (int round = 0; round < 30; ++round) {
    if (round % 3 == 2 && eng.flow_count() > 3) {
      (void)eng.remove_flow(eng.flow_count() - 1);
      (void)eng.evaluate();
    } else {
      (void)eng.try_admit(flow_for(200 + round, "writer"));
    }
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (probes_ok.load() + probes_bad.load() <
             kReaders * kMinProbesPerReader &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(probes_bad.load(), 0);
  EXPECT_GE(probes_ok.load(), kReaders * kMinProbesPerReader);
}

}  // namespace
}  // namespace gmfnet::engine
