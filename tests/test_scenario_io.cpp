#include "io/scenario_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/holistic.hpp"
#include "net/topology.hpp"
#include "workload/taskset_gen.hpp"

namespace gmfnet::io {
namespace {

const char* kSample = R"(# gmfnet scenario v1
endhost alice
endhost bob
switch  sw croute_ns=2700 csend_ns=1000 processors=1
duplex  alice sw 100000000
duplex  sw bob 100000000 prop_us=5

flow video prio=3 route=alice,sw,bob
frame t_ms=10 d_ms=20 gj_us=200 payload_bytes=8000
frame t_ms=10 d_ms=20 gj_us=200 payload_bytes=1000

flow voice prio=7 rtp route=bob,sw,alice
frame t_ms=20 d_ms=20 payload_bytes=160
)";

TEST(ScenarioIo, ParsesSampleCompletely) {
  const auto s = parse_scenario(kSample);
  EXPECT_EQ(s.network.node_count(), 3u);
  EXPECT_EQ(s.network.link_count(), 4u);
  ASSERT_EQ(s.flows.size(), 2u);

  const gmf::Flow& video = s.flows[0];
  EXPECT_EQ(video.name(), "video");
  EXPECT_EQ(video.priority(), 3);
  EXPECT_FALSE(video.rtp());
  ASSERT_EQ(video.frame_count(), 2u);
  EXPECT_EQ(video.frame(0).payload_bits, 8000 * 8);
  EXPECT_EQ(video.frame(0).min_separation, gmfnet::Time::ms(10));
  EXPECT_EQ(video.frame(0).jitter, gmfnet::Time::us(200));

  const gmf::Flow& voice = s.flows[1];
  EXPECT_TRUE(voice.rtp());
  EXPECT_EQ(voice.frame(0).jitter, gmfnet::Time::zero());  // default

  // Switch params and propagation delay made it through.
  const auto sw = s.network.nodes_of_kind(net::NodeKind::kSwitch).front();
  EXPECT_EQ(s.network.node(sw).sw.croute, gmfnet::Time::ns(2700));
  EXPECT_EQ(s.network.prop(sw, video.route().destination()),
            gmfnet::Time::us(5));
}

TEST(ScenarioIo, ParsedScenarioIsAnalyzable) {
  const auto s = parse_scenario(kSample);
  core::AnalysisContext ctx(s.network, s.flows);
  EXPECT_TRUE(core::analyze_holistic(ctx).schedulable);
}

TEST(ScenarioIo, RoundTripsThroughFormat) {
  const auto s1 = parse_scenario(kSample);
  const std::string text = format_scenario(s1);
  const auto s2 = parse_scenario(text);
  EXPECT_EQ(format_scenario(s2), text);  // fixed point of format∘parse
  ASSERT_EQ(s2.flows.size(), s1.flows.size());
  for (std::size_t f = 0; f < s1.flows.size(); ++f) {
    EXPECT_EQ(s2.flows[f].name(), s1.flows[f].name());
    EXPECT_EQ(s2.flows[f].priority(), s1.flows[f].priority());
    EXPECT_EQ(s2.flows[f].rtp(), s1.flows[f].rtp());
    ASSERT_EQ(s2.flows[f].frame_count(), s1.flows[f].frame_count());
    for (std::size_t k = 0; k < s1.flows[f].frame_count(); ++k) {
      EXPECT_EQ(s2.flows[f].frame(k).min_separation,
                s1.flows[f].frame(k).min_separation);
      EXPECT_EQ(s2.flows[f].frame(k).payload_bits,
                s1.flows[f].frame(k).payload_bits);
    }
  }
}

TEST(ScenarioIo, SaveAndLoadFile) {
  const auto s1 = parse_scenario(kSample);
  const std::string path = testing::TempDir() + "/gmfnet_scenario.txt";
  ASSERT_TRUE(save_scenario(s1, path));
  const auto s2 = load_scenario(path);
  EXPECT_EQ(format_scenario(s2), format_scenario(s1));
  std::remove(path.c_str());
}

TEST(ScenarioIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_scenario("/nonexistent/scenario.txt"),
               std::runtime_error);
}

TEST(ScenarioIo, ErrorsCarryLineNumbers) {
  try {
    (void)parse_scenario("endhost a\nendhost b\nbogus x y\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(ScenarioIo, RejectsCommonMistakes) {
  EXPECT_THROW(parse_scenario("endhost a\nendhost a\n"), ParseError);
  EXPECT_THROW(parse_scenario("link a b 100\n"), ParseError);  // unknown
  EXPECT_THROW(parse_scenario("endhost a\nendhost b\nlink a b xyz\n"),
               ParseError);
  EXPECT_THROW(parse_scenario("frame t_ms=1 d_ms=1 payload_bits=8\n"),
               ParseError);  // frame before flow
  EXPECT_THROW(
      parse_scenario("endhost a\nendhost b\nflow f route=a\n"),
      ParseError);  // short route
  EXPECT_THROW(parse_scenario("endhost a\nflow f route=a,b\n"),
               ParseError);  // unknown route node
}

TEST(ScenarioIo, LinkSpeedParsedStrictly) {
  // Regression: `100mbps` used to silently parse as 100 bps via bare
  // std::stoll; the whole token must now be an integer.
  EXPECT_THROW(
      parse_scenario("endhost a\nendhost b\nduplex a b 100mbps\n"),
      ParseError);
  EXPECT_THROW(parse_scenario("endhost a\nendhost b\nlink a b 1e9\n"),
               ParseError);
  try {
    (void)parse_scenario("endhost a\nendhost b\nduplex a b 100mbps\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("100mbps"), std::string::npos);
  }
}

TEST(ScenarioIo, UnknownOrMistypedOptionsRejected) {
  const char* kPreamble =
      "endhost a\nendhost b\nswitch s\nduplex a s 1000000\n"
      "duplex s b 1000000\n";
  // Typo'd keys used to vanish silently into *_or fallbacks.
  EXPECT_THROW(parse_scenario(std::string(kPreamble) +
                              "flow f pirority=5 route=a,s,b\n"
                              "frame t_ms=1 d_ms=10 payload_bits=8\n"),
               ParseError);
  EXPECT_THROW(parse_scenario(std::string(kPreamble) +
                              "flow f route=a,s,b\n"
                              "frame t_ms=1 d_ms=10 gj_s=1 payload_bits=8\n"),
               ParseError);
  EXPECT_THROW(parse_scenario("endhost a\nendhost b\n"
                              "switch s croute_ns=1 bogus=2\n"),
               ParseError);
  EXPECT_THROW(parse_scenario("endhost a\nendhost b\n"
                              "duplex a b 1000000 stray\n"),
               ParseError);
  // Bare-name directives are just as strict about trailing tokens.
  EXPECT_THROW(parse_scenario("endhost a b\n"), ParseError);
  EXPECT_THROW(parse_scenario("router r croute_ms=5\n"), ParseError);
  try {
    (void)parse_scenario(std::string(kPreamble) +
                         "flow f pirority=5 route=a,s,b\n"
                         "frame t_ms=1 d_ms=10 payload_bits=8\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("pirority"), std::string::npos);
  }
}

TEST(ScenarioIo, DuplicateOptionsRejected) {
  const char* kPreamble =
      "endhost a\nendhost b\nswitch s\nduplex a s 1000000\n"
      "duplex s b 1000000\n";
  // A duplicate key used to silently overwrite the earlier value.
  EXPECT_THROW(parse_scenario(std::string(kPreamble) +
                              "flow f prio=1 prio=2 route=a,s,b\n"
                              "frame t_ms=1 d_ms=10 payload_bits=8\n"),
               ParseError);
  EXPECT_THROW(parse_scenario(std::string(kPreamble) +
                              "flow f route=a,s,b\n"
                              "frame t_ms=1 t_ms=2 d_ms=10 payload_bits=8\n"),
               ParseError);
  // Redundant payload keys are ambiguous, not first-wins.
  EXPECT_THROW(
      parse_scenario(std::string(kPreamble) +
                     "flow f route=a,s,b\n"
                     "frame t_ms=1 d_ms=10 payload_bits=8 payload_bytes=1\n"),
      ParseError);
}

TEST(ScenarioIo, FormatRejectsNamesThatCannotRoundTrip) {
  const auto scenario_with_flow_name = [](const std::string& name) {
    auto s = parse_scenario(kSample);
    s.flows[0].set_name(name);
    return s;
  };
  for (const std::string bad :
       {"two words", "tab\tname", "has#hash", "a,b", ""}) {
    EXPECT_THROW((void)format_scenario(scenario_with_flow_name(bad)),
                 std::invalid_argument)
        << "flow name '" << bad << "'";
  }
  // Node names get the same treatment...
  workload::Scenario s;
  s.network.add_endhost("bad name");
  EXPECT_THROW((void)format_scenario(s), std::invalid_argument);
  // ...including duplicates, which the parser would refuse to re-define.
  workload::Scenario dup;
  dup.network.add_endhost("x");
  dup.network.add_endhost("x");
  EXPECT_THROW((void)format_scenario(dup), std::invalid_argument);
}

TEST(ScenarioIo, FuzzedNamesEitherRejectOrRoundTrip) {
  // Property over randomized names drawn from a charset that includes the
  // format's metacharacters: format_scenario either refuses the name or
  // its output parses back to the identical name set.  No silent
  // corruption in between.
  const std::string clean = "abz_9-";
  const std::string dirty = "ab#, \tz_9-";
  Rng rng(0xf00d);
  int rejected = 0;
  int round_tripped = 0;
  for (int iter = 0; iter < 200; ++iter) {
    // Half the iterations draw from a metacharacter-free charset so both
    // outcomes (clean round trip, up-front rejection) actually occur.
    const std::string& charset = iter % 2 == 0 ? clean : dirty;
    const auto name_of = [&](const std::string& prefix) {
      std::string n = prefix;
      const std::size_t len = 1 + rng.next_below(6);
      for (std::size_t i = 0; i < len; ++i) {
        n += charset[static_cast<std::size_t>(rng.next_below(charset.size()))];
      }
      return n;
    };
    workload::Scenario s;
    const net::NodeId a = s.network.add_endhost(name_of("a"));
    const net::NodeId sw = s.network.add_switch(name_of("s"));
    const net::NodeId b = s.network.add_endhost(name_of("b"));
    s.network.add_duplex_link(a, sw, 1'000'000);
    s.network.add_duplex_link(sw, b, 1'000'000);
    s.flows.push_back(workload::make_voip_flow(name_of("f"),
                                               net::Route({a, sw, b})));
    try {
      const std::string text = format_scenario(s);
      const auto back = parse_scenario(text);
      ASSERT_EQ(back.network.node_count(), 3u);
      for (std::int32_t n = 0; n < 3; ++n) {
        EXPECT_EQ(back.network.node(net::NodeId(n)).name,
                  s.network.node(net::NodeId(n)).name);
      }
      ASSERT_EQ(back.flows.size(), 1u);
      EXPECT_EQ(back.flows[0].name(), s.flows[0].name());
      ++round_tripped;
    } catch (const std::invalid_argument&) {
      ++rejected;  // refused up front — the acceptable outcome for bad names
    }
  }
  // The charset makes both outcomes overwhelmingly likely across 200 draws.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(round_tripped, 0);
}

TEST(ScenarioIo, FlowWithoutFramesRejected) {
  EXPECT_THROW(parse_scenario(
                   "endhost a\nendhost b\nswitch s\nduplex a s 100\n"
                   "duplex s b 100\nflow f route=a,s,b\n"),
               ParseError);
}

TEST(ScenarioIo, SemanticValidationRuns) {
  // Syntactically fine but the route misses a link: Flow::validate throws.
  EXPECT_THROW(parse_scenario("endhost a\nendhost b\nswitch s\n"
                              "duplex a s 100\n"
                              "flow f route=a,s,b\n"
                              "frame t_ms=1 d_ms=1 payload_bits=8\n"),
               std::logic_error);
}

TEST(ScenarioIo, DurationUnitVariants) {
  const auto s = parse_scenario(
      "endhost a\nendhost b\nswitch s\nduplex a s 1000000\n"
      "duplex s b 1000000\n"
      "flow f route=a,s,b\n"
      "frame t_ps=5000 d_ns=7 gj_ms=2 payload_bits=16\n");
  const auto& fr = s.flows[0].frame(0);
  EXPECT_EQ(fr.min_separation, gmfnet::Time(5000));
  EXPECT_EQ(fr.deadline, gmfnet::Time::ns(7));
  EXPECT_EQ(fr.jitter, gmfnet::Time::ms(2));
}

TEST(ScenarioIo, CommentsAndBlankLinesIgnored)
{
  const auto s = parse_scenario(
      "\n# header\nendhost a   # trailing comment\n\nendhost b\n");
  EXPECT_EQ(s.network.node_count(), 2u);
}

// Property: format∘parse is the identity on generated scenarios.
class ScenarioIoRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScenarioIoRoundTrip, GeneratedScenariosSurvive) {
  const auto star = net::make_star_network(5, 100'000'000);
  Rng rng(GetParam());
  workload::TasksetParams params;
  params.num_flows = 6;
  params.total_utilization = 0.3;
  const auto ts =
      workload::generate_taskset(star.net, star.hosts, params, rng);
  ASSERT_TRUE(ts.has_value());
  workload::Scenario s1;
  s1.network = star.net;
  s1.flows = ts->flows;

  const std::string text = format_scenario(s1);
  const auto s2 = parse_scenario(text);
  EXPECT_EQ(format_scenario(s2), text);

  // And the analysis agrees on both representations.
  core::AnalysisContext c1(s1.network, s1.flows);
  core::AnalysisContext c2(s2.network, s2.flows);
  const auto r1 = core::analyze_holistic(c1);
  const auto r2 = core::analyze_holistic(c2);
  EXPECT_EQ(r1.schedulable, r2.schedulable);
  if (r1.converged && r2.converged) {
    for (std::size_t f = 0; f < s1.flows.size(); ++f) {
      EXPECT_EQ(r1.worst_response(core::FlowId(static_cast<std::int32_t>(f))),
                r2.worst_response(core::FlowId(static_cast<std::int32_t>(f))));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioIoRoundTrip,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace gmfnet::io
