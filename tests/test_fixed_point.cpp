#include "util/fixed_point.hpp"

#include <gtest/gtest.h>

namespace gmfnet {
namespace {

TEST(FixedPoint, ConstantFunctionConvergesImmediately) {
  const auto r =
      iterate_fixed_point(Time::us(5), [](Time) { return Time::us(5); });
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.value, Time::us(5));
  EXPECT_EQ(r.iterations, 1);
}

TEST(FixedPoint, ClimbsToFixedPoint) {
  // f(x) = min(x + 1us, 10us): fixed point at 10us.
  const auto f = [](Time x) { return min(x + Time::us(1), Time::us(10)); };
  const auto r = iterate_fixed_point(Time::zero(), f);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.value, Time::us(10));
}

TEST(FixedPoint, ResponseTimeShape) {
  // Classic RTA: w = C + ceil(w/T) * Ci with C=2, T=5, Ci=2 (ms).
  const Time c = Time::ms(2);
  const Time t = Time::ms(5);
  const Time ci = Time::ms(2);
  const auto f = [&](Time w) {
    return c + gmfnet::max(w, Time(1)).ceil_div(t) * ci;
  };
  const auto r = iterate_fixed_point(c, f);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.value, Time::ms(4));  // w = 2 + ceil(4/5)*2 = 4
}

TEST(FixedPoint, DivergenceHitsHorizon) {
  FixedPointOptions opts;
  opts.horizon = Time::ms(1);
  const auto f = [](Time x) { return x + Time::us(100); };
  const auto r = iterate_fixed_point(Time::zero(), f, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.value, opts.horizon);
}

TEST(FixedPoint, IterationCap) {
  FixedPointOptions opts;
  opts.max_iterations = 10;
  const auto f = [](Time x) { return x + Time(1); };
  const auto r = iterate_fixed_point(Time::zero(), f, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 10);
}

TEST(FixedPoint, SeedThatIsAlreadyFixed) {
  const auto f = [](Time x) { return x; };
  const auto r = iterate_fixed_point(Time::ms(7), f);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.value, Time::ms(7));
}

}  // namespace
}  // namespace gmfnet
