#include "gmf/link_params.hpp"

#include <gtest/gtest.h>

#include "ethernet/constants.hpp"
#include "net/topology.hpp"

namespace gmfnet::gmf {
namespace {

constexpr ethernet::LinkSpeedBps kTenMbit = 10'000'000;

Flow make_test_flow(std::vector<FrameSpec> frames) {
  const net::Figure1Network f = net::make_figure1_network();
  return Flow("t", net::Route({f.host0, f.sw4, f.sw6, f.host3}),
              std::move(frames));
}

std::vector<FrameSpec> simple_frames() {
  // Two frames: a big one (2 Ethernet frames) and a small one (1).
  std::vector<FrameSpec> fr(2);
  fr[0] = {gmfnet::Time::ms(30), gmfnet::Time::ms(100), gmfnet::Time::zero(),
           2'000 * 8};  // nbits 16064 -> 2 fragments
  fr[1] = {gmfnet::Time::ms(10), gmfnet::Time::ms(100), gmfnet::Time::zero(),
           100 * 8};  // 1 fragment
  return fr;
}

TEST(LinkParams, PerFrameTransmissionTimes) {
  const Flow flow = make_test_flow(simple_frames());
  const FlowLinkParams p(flow, kTenMbit);
  ASSERT_EQ(p.frame_count(), 2u);
  EXPECT_EQ(p.c(0), ethernet::transmission_time(flow.nbits(0), kTenMbit));
  EXPECT_EQ(p.c(1), ethernet::transmission_time(flow.nbits(1), kTenMbit));
  EXPECT_EQ(p.nframes(0), 2);
  EXPECT_EQ(p.nframes(1), 1);
}

TEST(LinkParams, MftMatchesEq1) {
  const Flow flow = make_test_flow(simple_frames());
  const FlowLinkParams p(flow, kTenMbit);
  EXPECT_EQ(p.mft(), gmfnet::Time::ns(1'230'400));  // 12304 bits / 10 Mbit/s
}

TEST(LinkParams, AggregateSums) {
  const Flow flow = make_test_flow(simple_frames());
  const FlowLinkParams p(flow, kTenMbit);
  EXPECT_EQ(p.csum(), p.c(0) + p.c(1));       // eq (4)
  EXPECT_EQ(p.nsum(), 3);                     // eq (5)
  EXPECT_EQ(p.tsum(), gmfnet::Time::ms(40));  // eq (6)
}

TEST(LinkParams, WindowedSumsWrapAround) {
  const Flow flow = make_test_flow(simple_frames());
  const FlowLinkParams p(flow, kTenMbit);
  // eq (7): k2 consecutive frames starting at k1, mod n.
  EXPECT_EQ(p.csum_window(0, 1), p.c(0));
  EXPECT_EQ(p.csum_window(1, 1), p.c(1));
  EXPECT_EQ(p.csum_window(1, 2), p.c(1) + p.c(0));
  EXPECT_EQ(p.csum_window(0, 2), p.csum());
  // eq (8).
  EXPECT_EQ(p.nsum_window(1, 2), 3);
  EXPECT_EQ(p.nsum_window(0, 1), 2);
  // eq (9): spans use k2-1 separations.
  EXPECT_EQ(p.tsum_window(0, 1), gmfnet::Time::zero());
  EXPECT_EQ(p.tsum_window(0, 2), gmfnet::Time::ms(30));
  EXPECT_EQ(p.tsum_window(1, 2), gmfnet::Time::ms(10));
}

TEST(LinkParams, UtilizationIsCsumOverTsum) {
  const Flow flow = make_test_flow(simple_frames());
  const FlowLinkParams p(flow, kTenMbit);
  EXPECT_DOUBLE_EQ(p.utilization(),
                   static_cast<double>(p.csum().ps()) /
                       static_cast<double>(p.tsum().ps()));
  EXPECT_GT(p.utilization(), 0.0);
  EXPECT_LT(p.utilization(), 1.0);
}

TEST(LinkParams, SingleFrameFlow) {
  std::vector<FrameSpec> fr(1);
  fr[0] = {gmfnet::Time::ms(20), gmfnet::Time::ms(20), gmfnet::Time::zero(),
           160 * 8};
  const Flow flow = make_test_flow(fr);
  const FlowLinkParams p(flow, kTenMbit);
  EXPECT_EQ(p.csum_window(0, 1), p.csum());
  EXPECT_EQ(p.tsum_window(0, 1), gmfnet::Time::zero());
  EXPECT_EQ(p.nsum_window(0, 1), p.nsum());
}

// Property: windowed sums of a full cycle equal the aggregates, for every
// starting phase.
class LinkParamsCycle : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LinkParamsCycle, FullWindowEqualsAggregate) {
  std::vector<FrameSpec> fr;
  for (int k = 0; k < 5; ++k) {
    fr.push_back({gmfnet::Time::ms(10 + 3 * k), gmfnet::Time::ms(200),
                  gmfnet::Time::zero(), (500 + 4000 * k) * 8});
  }
  const Flow flow = make_test_flow(fr);
  const FlowLinkParams p(flow, kTenMbit);
  const std::size_t k1 = GetParam();
  EXPECT_EQ(p.csum_window(k1, 5), p.csum());
  EXPECT_EQ(p.nsum_window(k1, 5), p.nsum());
  // Full-cycle span misses the final separation (k2-1 = 4 of 5 terms).
  EXPECT_EQ(p.tsum_window(k1, 5),
            p.tsum() - flow.frame((k1 + 4) % 5).min_separation);
}

INSTANTIATE_TEST_SUITE_P(AllPhases, LinkParamsCycle,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u));

}  // namespace
}  // namespace gmfnet::gmf
