#include "workload/scenario.hpp"

#include <gtest/gtest.h>

#include "core/context.hpp"

namespace gmfnet::workload {
namespace {

TEST(Scenario, Figure2BaseHasOneMpegFlow) {
  const Scenario s = make_figure2_scenario();
  ASSERT_EQ(s.flows.size(), 1u);
  EXPECT_EQ(s.flows[0].frame_count(), 9u);
  // Route 0 -> 4 -> 6 -> 3 as in Figure 2.
  const auto& r = s.flows[0].route();
  ASSERT_EQ(r.node_count(), 4u);
  EXPECT_EQ(r.node_at(0).v, 0);
  EXPECT_EQ(r.node_at(1).v, 4);
  EXPECT_EQ(r.node_at(2).v, 6);
  EXPECT_EQ(r.node_at(3).v, 3);
  EXPECT_NO_THROW(core::AnalysisContext(s.network, s.flows));
}

TEST(Scenario, Figure2CrossTrafficSharesResources) {
  const Scenario s = make_figure2_scenario(10'000'000, true);
  ASSERT_EQ(s.flows.size(), 3u);
  core::AnalysisContext ctx(s.network, s.flows);
  // All three flows end at host 3 over link(6,3).
  EXPECT_EQ(
      ctx.flows_on_link(net::LinkRef(net::NodeId(6), net::NodeId(3))).size(),
      3u);
}

TEST(Scenario, VoipFlowShape) {
  const Scenario s = make_figure2_scenario(10'000'000, true);
  const gmf::Flow& voip = s.flows[2];
  EXPECT_EQ(voip.frame_count(), 1u);
  EXPECT_EQ(voip.frame(0).min_separation, gmfnet::Time::ms(20));
  EXPECT_EQ(voip.frame(0).payload_bits, 160 * 8);
  EXPECT_TRUE(voip.rtp());
}

TEST(Scenario, VoipOfficeBidirectionalCalls) {
  const Scenario s = make_voip_office_scenario(5, 100'000'000);
  EXPECT_EQ(s.flows.size(), 10u);  // fwd + rev per call
  EXPECT_NO_THROW(core::AnalysisContext(s.network, s.flows));
  // Forward and reverse legs connect the same pair.
  for (std::size_t c = 0; c < 5; ++c) {
    const auto& fwd = s.flows[2 * c].route();
    const auto& rev = s.flows[2 * c + 1].route();
    EXPECT_EQ(fwd.source(), rev.destination());
    EXPECT_EQ(fwd.destination(), rev.source());
  }
}

TEST(Scenario, VoipOfficeDeterministicPerSeed) {
  const Scenario a = make_voip_office_scenario(4, 100'000'000, 9);
  const Scenario b = make_voip_office_scenario(4, 100'000'000, 9);
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].route(), b.flows[i].route());
  }
}

TEST(Scenario, VideoconfMixesAudioAndVideo) {
  const Scenario s = make_videoconf_scenario();
  EXPECT_EQ(s.flows.size(), 8u);  // 2 pairs x (video+audio) x 2 directions
  int audio = 0, video = 0;
  for (const auto& f : s.flows) {
    if (f.frame_count() == 1) ++audio;
    if (f.frame_count() == 9) ++video;
    // Audio outranks video.
    if (f.frame_count() == 1) {
      EXPECT_EQ(f.priority(), 2);
    }
    if (f.frame_count() == 9) {
      EXPECT_EQ(f.priority(), 1);
    }
  }
  EXPECT_EQ(audio, 4);
  EXPECT_EQ(video, 4);
  EXPECT_NO_THROW(core::AnalysisContext(s.network, s.flows));
}

}  // namespace
}  // namespace gmfnet::workload
