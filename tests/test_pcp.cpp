#include "ethernet/pcp.hpp"

#include <gtest/gtest.h>

namespace gmfnet::ethernet {
namespace {

TEST(Pcp, EmptyInput) {
  EXPECT_TRUE(quantize_priorities({}, 8).empty());
}

TEST(Pcp, FewerDistinctThanLevelsIsLossless) {
  const std::vector<std::int64_t> prios = {5, 1, 3};
  const auto pcp = quantize_priorities(prios, 8);
  ASSERT_EQ(pcp.size(), 3u);
  EXPECT_TRUE(quantization_is_lossless(prios, pcp));
  // Order preserved: prio 1 < 3 < 5.
  EXPECT_LT(pcp[1], pcp[2]);
  EXPECT_LT(pcp[2], pcp[0]);
}

TEST(Pcp, EqualPrioritiesShareClass) {
  const std::vector<std::int64_t> prios = {7, 7, 7};
  const auto pcp = quantize_priorities(prios, 4);
  EXPECT_EQ(pcp[0], pcp[1]);
  EXPECT_EQ(pcp[1], pcp[2]);
}

TEST(Pcp, OutputStaysWithinLevelRange) {
  std::vector<std::int64_t> prios;
  for (int i = 0; i < 100; ++i) prios.push_back(i * 13 % 97);
  for (int levels = 2; levels <= 8; ++levels) {
    const auto pcp = quantize_priorities(prios, levels);
    for (const Pcp p : pcp) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, levels);
    }
  }
}

TEST(Pcp, MonotoneMapping) {
  std::vector<std::int64_t> prios = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  for (int levels = 2; levels <= 8; ++levels) {
    const auto pcp = quantize_priorities(prios, levels);
    for (std::size_t i = 0; i + 1 < prios.size(); ++i) {
      EXPECT_LE(pcp[i], pcp[i + 1]) << "levels=" << levels;
    }
  }
}

TEST(Pcp, MoreDistinctThanLevelsMergesButCovers) {
  std::vector<std::int64_t> prios;
  for (int i = 0; i < 16; ++i) prios.push_back(i);
  const auto pcp = quantize_priorities(prios, 4);
  EXPECT_FALSE(quantization_is_lossless(prios, pcp));
  // All four classes used, extremes mapped to extremes.
  EXPECT_EQ(pcp.front(), 0);
  EXPECT_EQ(pcp.back(), 3);
}

TEST(Pcp, LosslessCheckCatchesInversion) {
  const std::vector<std::int64_t> prios = {1, 2};
  EXPECT_FALSE(quantization_is_lossless(prios, {1, 0}));  // inverted
  EXPECT_FALSE(quantization_is_lossless(prios, {0, 0}));  // merged
  EXPECT_TRUE(quantization_is_lossless(prios, {0, 1}));
}

TEST(Pcp, TwoLevelsSplitRoughlyInHalf) {
  std::vector<std::int64_t> prios = {0, 1, 2, 3};
  const auto pcp = quantize_priorities(prios, 2);
  EXPECT_EQ(pcp[0], 0);
  EXPECT_EQ(pcp[1], 0);
  EXPECT_EQ(pcp[2], 1);
  EXPECT_EQ(pcp[3], 1);
}

}  // namespace
}  // namespace gmfnet::ethernet
