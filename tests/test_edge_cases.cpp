// Edge cases across modules: router-sourced flows (the Figure-2 remark),
// overload behaviour in the simulator, holistic sweep caps, parser
// robustness against garbage input.
#include <gtest/gtest.h>

#include "core/holistic.hpp"
#include "io/scenario_io.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace gmfnet {
namespace {

TEST(EdgeCases, RouterSourcedFlowAnalyzes) {
  // "an IP-router may be a source node and then the destination node may
  // be an IP-endhost" — traffic entering the managed network from the
  // Internet via node 7.
  const auto fig = net::make_figure1_network(10'000'000);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "inbound", net::Route({fig.router7, fig.sw6, fig.host3}),
      Time::ms(20), Time::ms(20), 1500 * 8)};
  core::AnalysisContext ctx(fig.net, flows);
  const auto r = core::analyze_holistic(ctx);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.schedulable);
}

TEST(EdgeCases, RouterSourcedFlowSimulates) {
  const auto fig = net::make_figure1_network(10'000'000);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "inbound", net::Route({fig.router7, fig.sw6, fig.host3}),
      Time::ms(20), Time::ms(20), 1500 * 8)};
  core::AnalysisContext ctx(fig.net, flows);
  const auto bound = core::analyze_holistic(ctx);
  ASSERT_TRUE(bound.converged);

  sim::SimOptions opts;
  opts.horizon = Time::ms(500);
  sim::Simulator simulator(fig.net, flows, opts);
  simulator.run();
  const auto& st = simulator.stats(net::FlowId(0));
  EXPECT_GT(st.packets_completed, 0u);
  EXPECT_LE(st.worst_response(), bound.flows[0].worst_response());
}

TEST(EdgeCases, RouterToRouterTransitFlow) {
  // Transit traffic: enters at router 7, leaves at an added router 8.
  auto fig = net::make_figure1_network(10'000'000);
  const auto router8 = fig.net.add_router("8");
  fig.net.add_duplex_link(fig.sw4, router8, 10'000'000);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "transit", net::Route({fig.router7, fig.sw6, fig.sw4, router8}),
      Time::ms(20), Time::ms(40), 1500 * 8)};
  core::AnalysisContext ctx(fig.net, flows);
  EXPECT_TRUE(core::analyze_holistic(ctx).schedulable);
}

TEST(EdgeCases, SimulatorShowsMissesWhenAnalysisPredictsThem) {
  // Deadline below even the raw wire time: the analysis rejects AND the
  // simulator observes actual misses — the two views agree on overload.
  const auto star = net::make_star_network(4, 10'000'000);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "late", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      Time::ms(20), Time::us(100), 4000 * 8)};
  core::AnalysisContext ctx(star.net, flows);
  EXPECT_FALSE(core::analyze_holistic(ctx).schedulable);

  sim::SimOptions opts;
  opts.horizon = Time::ms(200);
  sim::Simulator simulator(star.net, flows, opts);
  simulator.run();
  EXPECT_GT(simulator.stats(net::FlowId(0)).total_misses(), 0u);
}

TEST(EdgeCases, SimulatorSurvivesSustainedOverloadOfOneLink) {
  // More offered than the wire carries: queues grow, packets complete late
  // (drain phase) or are reported incomplete — never a crash or a hang.
  const auto star = net::make_star_network(4, 10'000'000);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "over", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      Time::ms(1), Time::ms(1), 3000 * 8)};  // ~25 Mbit/s offered
  sim::SimOptions opts;
  opts.horizon = Time::ms(100);
  sim::Simulator simulator(star.net, flows, opts);
  simulator.run();
  const auto& st = simulator.stats(net::FlowId(0));
  EXPECT_GT(st.packets_completed + st.packets_incomplete, 50u);
  EXPECT_GT(st.total_misses(), 0u);
}

TEST(EdgeCases, HolisticSweepCapReportsNonConvergence) {
  // max_sweeps = 1 cannot reach a fixed point (sweep 1 changes jitters);
  // the result must say so rather than claim schedulability.
  const auto s = workload::make_figure2_scenario(10'000'000, true);
  core::AnalysisContext ctx(s.network, s.flows);
  core::HolisticOptions opts;
  opts.max_sweeps = 1;
  const auto r = core::analyze_holistic(ctx, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.schedulable);
}

TEST(EdgeCases, TinyHorizonMarksDivergenceEarly) {
  const auto s = workload::make_figure2_scenario(10'000'000, true);
  core::AnalysisContext ctx(s.network, s.flows);
  core::HolisticOptions opts;
  opts.hop.horizon = Time::us(1);  // absurdly small
  const auto r = core::analyze_holistic(ctx, opts);
  EXPECT_FALSE(r.schedulable);
}

TEST(EdgeCases, ParserNeverCrashesOnGarbage) {
  Rng rng(99);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 =_,.#\n";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const auto len = static_cast<std::size_t>(rng.uniform_i64(0, 200));
    for (std::size_t i = 0; i < len; ++i) {
      text += alphabet[static_cast<std::size_t>(
          rng.next_below(alphabet.size()))];
    }
    try {
      (void)io::parse_scenario(text);
    } catch (const io::ParseError&) {
      // expected for almost everything
    } catch (const std::logic_error&) {
      // semantic validation may fire on lucky inputs
    }
  }
  SUCCEED();
}

TEST(EdgeCases, ZeroPayloadFlowStillAnalyzable) {
  // Keep-alive style traffic: 0-byte UDP payload still occupies a frame.
  const auto star = net::make_star_network(4, 10'000'000);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "keepalive", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      Time::ms(100), Time::ms(100), 0)};
  core::AnalysisContext ctx(star.net, flows);
  const auto r = core::analyze_holistic(ctx);
  EXPECT_TRUE(r.schedulable);
  EXPECT_GT(r.flows[0].worst_response(), Time::zero());
}

TEST(EdgeCases, MaxSizeUdpDatagram) {
  // 65507-byte payload: 45 Ethernet fragments, still sound end to end.
  const auto star = net::make_star_network(4, 100'000'000);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "jumbo", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      Time::ms(100), Time::ms(100), 65507 * 8)};
  core::AnalysisContext ctx(star.net, flows);
  const auto bound = core::analyze_holistic(ctx);
  ASSERT_TRUE(bound.schedulable);

  sim::SimOptions opts;
  opts.horizon = Time::sec(1);
  sim::Simulator simulator(star.net, flows, opts);
  simulator.run();
  EXPECT_LE(simulator.stats(net::FlowId(0)).worst_response(),
            bound.flows[0].worst_response());
}

TEST(EdgeCases, DirectHostToHostLink) {
  // A route with no switch at all: only the first-hop stage applies.
  net::Network net;
  const auto a = net.add_endhost("a");
  const auto b = net.add_endhost("b");
  net.add_duplex_link(a, b, 10'000'000);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "direct", net::Route({a, b}), Time::ms(10), Time::ms(10), 1000 * 8)};
  core::AnalysisContext ctx(net, flows);
  const auto r = core::analyze_holistic(ctx);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(ctx.stages(core::FlowId(0)).size(), 1u);
  EXPECT_TRUE(r.schedulable);
}

TEST(EdgeCases, VeryManySmallFlowsOnOneSwitch) {
  // Stress: 40 voice flows through one switch; analysis converges and the
  // verdict is consistent with utilization.
  const auto star = net::make_star_network(10, 100'000'000);
  std::vector<gmf::Flow> flows;
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const auto a = static_cast<std::size_t>(rng.next_below(10));
    auto b = a;
    while (b == a) b = static_cast<std::size_t>(rng.next_below(10));
    flows.push_back(workload::make_voip_flow(
        "c" + std::to_string(i),
        net::Route({star.hosts[a], star.sw, star.hosts[b]})));
  }
  core::AnalysisContext ctx(star.net, flows);
  const auto r = core::analyze_holistic(ctx);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.schedulable);  // 40 * ~0.1 Mbit/s on 100 Mbit/s links
}

}  // namespace
}  // namespace gmfnet
