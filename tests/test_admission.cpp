#include "core/admission.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::core {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 10'000'000;

gmf::Flow voip_between(const net::StarNetwork& star, std::size_t a,
                       std::size_t b, const std::string& name) {
  return workload::make_voip_flow(
      name, net::Route({star.hosts[a], star.sw, star.hosts[b]}));
}

TEST(Admission, AcceptsFeasibleFlow) {
  const auto star = net::make_star_network(4, kSpeed);
  AdmissionController ac(star.net);
  const auto result = ac.try_admit(voip_between(star, 0, 1, "call0"));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->schedulable);
  EXPECT_EQ(ac.admitted_count(), 1u);
  EXPECT_EQ(ac.rejected_count(), 0u);
}

TEST(Admission, RejectsOverload) {
  const auto star = net::make_star_network(4, kSpeed);
  AdmissionController ac(star.net);
  // 15000 bytes per 2 ms = 60 Mbit/s on a 10 Mbit/s link.
  gmf::Flow hog = gmf::make_sporadic_flow(
      "hog", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(2), gmfnet::Time::ms(2), 15000 * 8);
  EXPECT_FALSE(ac.try_admit(hog).has_value());
  EXPECT_EQ(ac.admitted_count(), 0u);
  EXPECT_EQ(ac.rejected_count(), 1u);
}

TEST(Admission, RejectionLeavesAdmittedSetIntact) {
  const auto star = net::make_star_network(4, kSpeed);
  AdmissionController ac(star.net);
  ASSERT_TRUE(ac.try_admit(voip_between(star, 0, 1, "ok")).has_value());
  gmf::Flow hog = gmf::make_sporadic_flow(
      "hog", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(2), gmfnet::Time::ms(2), 15000 * 8);
  EXPECT_FALSE(ac.try_admit(hog).has_value());
  EXPECT_EQ(ac.admitted_count(), 1u);
  EXPECT_EQ(ac.admitted()[0].name(), "ok");
  // Existing guarantees still hold.
  const auto g = ac.current_guarantees();
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(g->schedulable);
}

TEST(Admission, ProtectsExistingFlows) {
  const auto star = net::make_star_network(4, kSpeed);
  AdmissionController ac(star.net);
  // An existing flow with a deadline just above its lone-flow bound...
  gmf::Flow fragile = gmf::make_sporadic_flow(
      "fragile", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(30), gmfnet::Time::ms_f(3.0), 1000 * 8, 1);
  ASSERT_TRUE(ac.try_admit(fragile).has_value());
  // ...must be protected from a newcomer that would push it over, even if
  // the newcomer itself would be fine.
  gmf::Flow bully = gmf::make_sporadic_flow(
      "bully", net::Route({star.hosts[2], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(30), gmfnet::Time::ms(30), 14000 * 8, 5);
  EXPECT_FALSE(ac.try_admit(bully).has_value());
  EXPECT_EQ(ac.admitted_count(), 1u);
}

TEST(Admission, FillsUpThenSaturates) {
  const auto star = net::make_star_network(6, kSpeed);
  AdmissionController ac(star.net);
  // Admit voice calls 0->1 until the controller refuses; with 10 Mbit/s
  // links and ~0.8 Mbit/s per call including overheads, this must stop
  // eventually but accept at least one.
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    gmf::Flow call = voip_between(star, 0, 1, "c" + std::to_string(i));
    if (!ac.try_admit(call).has_value()) break;
    ++accepted;
  }
  EXPECT_GE(accepted, 1);
  EXPECT_LT(accepted, 100);
  EXPECT_EQ(ac.admitted_count(), static_cast<std::size_t>(accepted));
}

TEST(Admission, RemoveFreesCapacity) {
  const auto star = net::make_star_network(4, kSpeed);
  AdmissionController ac(star.net);
  // Fill the 0->1 path.
  int accepted = 0;
  while (ac.try_admit(voip_between(star, 0, 1, "x")).has_value()) {
    ++accepted;
    ASSERT_LT(accepted, 200);
  }
  // Removing one admitted flow must allow a new one in again.
  EXPECT_TRUE(ac.remove(0));
  EXPECT_TRUE(ac.try_admit(voip_between(star, 0, 1, "y")).has_value());
}

TEST(Admission, RemoveInRangeReturnsTrueAndShrinksSet) {
  const auto star = net::make_star_network(4, kSpeed);
  AdmissionController ac(star.net);
  ASSERT_TRUE(ac.try_admit(voip_between(star, 0, 1, "a")).has_value());
  ASSERT_TRUE(ac.try_admit(voip_between(star, 2, 3, "b")).has_value());
  EXPECT_TRUE(ac.remove(0));
  ASSERT_EQ(ac.admitted_count(), 1u);
  // Indices shift down: the surviving flow is now index 0.
  EXPECT_EQ(ac.admitted()[0].name(), "b");
}

TEST(Admission, RemoveOutOfRangeReturnsFalseAndIsNoop) {
  const auto star = net::make_star_network(4, kSpeed);
  AdmissionController ac(star.net);
  EXPECT_FALSE(ac.remove(0));
  EXPECT_FALSE(ac.remove(5));
  EXPECT_EQ(ac.admitted_count(), 0u);
  ASSERT_TRUE(ac.try_admit(voip_between(star, 0, 1, "only")).has_value());
  // One past the end is still out of range.
  EXPECT_FALSE(ac.remove(1));
  EXPECT_EQ(ac.admitted_count(), 1u);
  EXPECT_EQ(ac.admitted()[0].name(), "only");
}

TEST(Admission, CurrentGuaranteesEmptyWhenNoFlows) {
  const auto star = net::make_star_network(4, kSpeed);
  const AdmissionController ac(star.net);
  EXPECT_FALSE(ac.current_guarantees().has_value());
}

TEST(Admission, MalformedFlowThrowsInsteadOfRejecting) {
  const auto star = net::make_star_network(4, kSpeed);
  AdmissionController ac(star.net);
  gmf::Flow bad("bad", net::Route({star.hosts[0], star.hosts[1]}), {});
  EXPECT_THROW(ac.try_admit(bad), std::logic_error);
  EXPECT_EQ(ac.rejected_count(), 0u);  // not a capacity rejection
}

}  // namespace
}  // namespace gmfnet::core
