#include "core/report.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::core {
namespace {

struct Fixture {
  workload::Scenario s = workload::make_figure2_scenario(10'000'000, true);
  AnalysisContext ctx{s.network, s.flows};
  HolisticResult result = analyze_holistic(ctx);
};

TEST(Report, StageLabelsUseNodeNames) {
  const Fixture f;
  EXPECT_EQ(stage_label(f.ctx.network(),
                        StageKey::link(NodeId(0), NodeId(4))),
            "link(0 -> 4)");
  EXPECT_EQ(stage_label(f.ctx.network(), StageKey::ingress(NodeId(4))),
            "in(4)");
}

TEST(Report, SummaryContainsEveryFlowAndVerdict) {
  const Fixture f;
  const std::string text = render_report(f.ctx, f.result,
                                         ReportOptions{false, false});
  EXPECT_NE(text.find("SCHEDULABLE"), std::string::npos);
  for (const auto& flow : f.s.flows) {
    EXPECT_NE(text.find(flow.name()), std::string::npos) << flow.name();
  }
  EXPECT_NE(text.find("converged"), std::string::npos);
}

TEST(Report, PerFrameRowsPresent) {
  const Fixture f;
  ReportOptions opts;
  opts.per_frame = true;
  const std::string text = render_flow_report(f.ctx, f.result, FlowId(0),
                                              opts);
  // 9 MPEG frames -> rows 0..8 plus header.
  for (int k = 0; k < 9; ++k) {
    EXPECT_NE(text.find("| " + std::to_string(k) + " "), std::string::npos)
        << "frame " << k;
  }
  EXPECT_NE(text.find("route 0 -> 4 -> 6 -> 3"), std::string::npos);
}

TEST(Report, PerStageColumnsPresent) {
  const Fixture f;
  ReportOptions opts;
  opts.per_frame = true;
  opts.per_stage = true;
  const std::string text = render_flow_report(f.ctx, f.result, FlowId(0),
                                              opts);
  EXPECT_NE(text.find("link(0 -> 4)"), std::string::npos);
  EXPECT_NE(text.find("in(4)"), std::string::npos);
  EXPECT_NE(text.find("link(6 -> 3)"), std::string::npos);
}

TEST(Report, DivergedFlowReported) {
  const auto star = net::make_star_network(4, 10'000'000);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "hog", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(2), gmfnet::Time::ms(2), 15000 * 8)};
  AnalysisContext ctx(star.net, flows);
  const HolisticResult result = analyze_holistic(ctx);
  const std::string text = render_report(ctx, result);
  EXPECT_NE(text.find("NOT SCHEDULABLE"), std::string::npos);
  EXPECT_NE(text.find("DIVERGED"), std::string::npos);
}

TEST(Report, MissVerdictShown) {
  const auto star = net::make_star_network(4, 10'000'000);
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "tight", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
      gmfnet::Time::ms(20), gmfnet::Time::ms(1), 1000 * 8)};
  AnalysisContext ctx(star.net, flows);
  const HolisticResult result = analyze_holistic(ctx);
  const std::string text = render_report(ctx, result);
  EXPECT_NE(text.find("MISS"), std::string::npos);
  EXPECT_NE(text.find("NOT SCHEDULABLE"), std::string::npos);
}

}  // namespace
}  // namespace gmfnet::core
