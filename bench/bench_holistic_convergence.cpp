// Experiment E8: convergence behaviour of the holistic fixed point
// ("Putting it all together"): sweeps to convergence vs. utilization, and
// the Gauss-Seidel vs. Jacobi (parallel) ablation.
//
// Plus the solver-strategy section: plain Gauss-Seidel vs safeguarded
// Anderson(m) on a near-critical interference ring (two equal-priority
// flows crossing two shared links in opposite route order — the jitter
// feedback cycle whose lap gain approaches 1 as the frame separation drops
// toward saturation, turning the plain climb into a slow geometric
// ratchet).  Emits BENCH_holistic_convergence.json with the sweep-count
// and wall-clock ratios; check_bench_regression.py gates the headline row
// (Anderson must cut sweeps by >= 30% without costing wall time).  The
// bench fails itself on any violation of the solver contract: accelerated
// verdicts must match plain, and the accelerated fixed point must sit
// at-or-above the plain least fixed point slot for slot (conservative) —
// see core::SolverOptions for why cyclic opt-in trades exact identity for
// a certified upper bound.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/holistic.hpp"
#include "core/priority.hpp"
#include "net/topology.hpp"
#include "util/bench_json.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/taskset_gen.hpp"

using namespace gmfnet;

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct Ring {
  net::Network net;
  std::vector<gmf::Flow> flows;
};

// Same construction as tests/test_solver_equivalence.cpp: a 6-switch ring,
// flows A and B share X->Y and Z->W in opposite route order at equal
// priority, closing the dependency cycle R_A@XY <- J_B@XY <- R_B@ZW <-
// J_A@ZW <- R_A@XY.  `separation_us` tunes the cycle's lap gain: 202us is
// just above the divergence threshold (~190us) on 100 Mbps links.
Ring make_near_critical_ring(std::int64_t separation_us) {
  Ring r;
  net::Network& netw = r.net;
  const auto X = netw.add_switch("X"), Y = netw.add_switch("Y");
  const auto M = netw.add_switch("M"), Z = netw.add_switch("Z");
  const auto W = netw.add_switch("W"), N = netw.add_switch("N");
  const auto hA = netw.add_endhost("hA"), hA2 = netw.add_endhost("hA2");
  const auto hB = netw.add_endhost("hB"), hB2 = netw.add_endhost("hB2");
  const ethernet::LinkSpeedBps sp = 100'000'000;
  netw.add_duplex_link(X, Y, sp);
  netw.add_duplex_link(Y, M, sp);
  netw.add_duplex_link(M, Z, sp);
  netw.add_duplex_link(Z, W, sp);
  netw.add_duplex_link(W, N, sp);
  netw.add_duplex_link(N, X, sp);
  netw.add_duplex_link(hA, X, sp);
  netw.add_duplex_link(W, hA2, sp);
  netw.add_duplex_link(hB, Z, sp);
  netw.add_duplex_link(Y, hB2, sp);
  netw.validate();
  gmf::FrameSpec fs;
  fs.min_separation = Time::us(separation_us);
  fs.deadline = Time::ms(500);
  fs.jitter = Time::ms(2);
  fs.payload_bits = 1000 * 8;
  r.flows.emplace_back("A", net::Route({hA, X, Y, M, Z, W, hA2}),
                       std::vector<gmf::FrameSpec>{fs}, 3);
  r.flows.emplace_back("B", net::Route({hB, Z, W, N, X, Y, hB2}),
                       std::vector<gmf::FrameSpec>{fs}, 3);
  return r;
}

// Slotwise `acc >= plain` over every (flow, stage, frame) jitter — the
// conservative half of the cyclic-opt-in contract.
bool conservative(const core::AnalysisContext& ctx,
                  const core::HolisticResult& acc,
                  const core::HolisticResult& plain) {
  for (std::size_t f = 0; f < ctx.flow_count(); ++f) {
    const core::FlowId id(static_cast<std::int32_t>(f));
    for (const core::StageKey& st : ctx.stages(id)) {
      for (std::size_t k = 0; k < ctx.flow(id).frame_count(); ++k) {
        if (acc.jitters.jitter(id, st, k) < plain.jitters.jitter(id, st, k)) {
          return false;
        }
      }
    }
  }
  return true;
}

int run_near_critical_section(BenchJsonWriter& json) {
  std::printf("\n=== Solver strategies on the near-critical ring "
              "(plain GS vs safeguarded Anderson, accept_cyclic) ===\n\n");
  Table t("Near-saturation ratchet: sweeps and wall time");
  t.set_columns({"separation", "m", "plain sweeps", "acc sweeps",
                 "sweep ratio", "plain ms", "acc ms", "wall ratio",
                 "accepted", "conservative"});

  int failures = 0;
  for (const std::int64_t sep_us : {205, 202, 200}) {
    const Ring r = make_near_critical_ring(sep_us);
    const core::AnalysisContext ctx(r.net, r.flows);
    core::HolisticOptions plain;
    plain.max_sweeps = 512;

    core::HolisticResult rp;
    double plain_ms = 1e100;
    for (int rep = 0; rep < 5; ++rep) {
      plain_ms = std::min(
          plain_ms, wall_ms([&] { rp = core::analyze_holistic(ctx, plain); }));
    }
    if (!rp.converged) {
      std::printf("plain solve did not converge at %lldus — bench bug\n",
                  static_cast<long long>(sep_us));
      return 1;
    }

    for (const int m : {1, 2}) {
      core::HolisticOptions acc = plain;
      acc.solver.mode = core::SolverMode::kAnderson;
      acc.solver.m = m;
      acc.solver.accept_cyclic = true;
      core::HolisticResult ra;
      core::IncrementalStats is;
      double acc_ms = 1e100;
      for (int rep = 0; rep < 5; ++rep) {
        is = {};
        acc_ms = std::min(acc_ms, wall_ms([&] {
          ra = core::solve_holistic(ctx, core::SolveRequest{}, acc, &is);
        }));
      }
      const bool cons = ra.converged && conservative(ctx, ra, rp);
      const bool verdicts = ra.converged == rp.converged &&
                            ra.schedulable == rp.schedulable;
      if (!cons || !verdicts) ++failures;

      const double sweep_ratio =
          static_cast<double>(rp.sweeps) / static_cast<double>(ra.sweeps);
      const double wall_ratio = plain_ms / acc_ms;
      t.add_row({Table::num(sep_us) + "us", Table::num(m),
                 Table::num(rp.sweeps), Table::num(ra.sweeps),
                 Table::fixed(sweep_ratio, 2), Table::fixed(plain_ms, 2),
                 Table::fixed(acc_ms, 2), Table::fixed(wall_ratio, 2),
                 Table::num(static_cast<std::int64_t>(is.accel_accepted)),
                 cons && verdicts ? "yes" : "NO"});
      json.begin_row();
      json.add("section", std::string("near_critical_ring"));
      json.add("separation_us", static_cast<std::int64_t>(sep_us));
      json.add("m", m);
      json.add("plain_sweeps", rp.sweeps);
      json.add("acc_sweeps", ra.sweeps);
      json.add("sweep_ratio", sweep_ratio);
      json.add("wall_ratio", wall_ratio);
      json.add("accel_accepted",
               static_cast<std::int64_t>(is.accel_accepted));
      json.add("accel_rejected",
               static_cast<std::int64_t>(is.accel_rejected));
      json.add("conservative", cons);
      json.add("verdicts_agree", verdicts);
    }
  }
  t.print();
  if (failures) {
    std::printf("\n%d row(s) violated the solver contract (conservative "
                "fixed point + matching verdicts) — bug.\n", failures);
  }
  return failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 20;
  std::printf("=== E8: holistic fixed-point convergence "
              "(%d task sets per level, Figure-1 topology) ===\n\n",
              trials);

  const auto fig = net::make_figure1_network(100'000'000);
  const std::vector<net::NodeId> hosts = {fig.host0, fig.host1, fig.host2,
                                          fig.host3};

  Table t("Sweeps to convergence and wall time");
  t.set_columns({"utilization", "converged", "GS sweeps (mean/max)",
                 "Jacobi sweeps (mean/max)", "GS ms", "Jacobi ms",
                 "fixed points agree"});
  CsvWriter csv({"utilization", "converged_frac", "gs_sweeps_mean",
                 "gs_sweeps_max", "jc_sweeps_mean", "jc_sweeps_max",
                 "gs_ms", "jc_ms", "agree"});

  for (const double util : {0.1, 0.3, 0.5, 0.7, 0.85}) {
    OnlineStats gs_sweeps, jc_sweeps;
    double gs_ms = 0, jc_ms = 0;
    int converged = 0, total = 0;
    bool agree = true;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(0xc0ffee + static_cast<std::uint64_t>(trial) * 31 +
              static_cast<std::uint64_t>(util * 1000));
      workload::TasksetParams params;
      params.num_flows = 10;
      params.total_utilization = util;
      params.deadline_factor_lo = 2.0;
      params.deadline_factor_hi = 4.0;
      auto ts = workload::generate_taskset(fig.net, hosts, params, rng);
      if (!ts) continue;
      core::assign_priorities(ts->flows,
                              core::PriorityScheme::kDeadlineMonotonic);
      core::AnalysisContext ctx(fig.net, ts->flows);
      ++total;

      core::HolisticOptions gs;
      core::HolisticOptions jc;
      jc.order = core::SweepOrder::kJacobi;
      core::HolisticResult rg, rj;
      gs_ms += wall_ms([&] { rg = core::analyze_holistic(ctx, gs); });
      jc_ms += wall_ms([&] { rj = core::analyze_holistic(ctx, jc); });
      if (rg.converged) {
        ++converged;
        gs_sweeps.add(rg.sweeps);
        if (rj.converged) {
          jc_sweeps.add(rj.sweeps);
          agree &= rg.jitters == rj.jitters;
        }
      }
    }
    t.add_row({Table::fixed(util, 2),
               Table::fixed(total ? static_cast<double>(converged) / total
                                  : 0.0,
                            2),
               Table::fixed(gs_sweeps.mean(), 1) + " / " +
                   Table::num(gs_sweeps.max()),
               Table::fixed(jc_sweeps.mean(), 1) + " / " +
                   Table::num(jc_sweeps.max()),
               Table::fixed(gs_ms, 1), Table::fixed(jc_ms, 1),
               agree ? "yes" : "NO"});
    csv.begin_row();
    csv.add(util);
    csv.add(total ? static_cast<double>(converged) / total : 0.0);
    csv.add(gs_sweeps.mean());
    csv.add(gs_sweeps.max());
    csv.add(jc_sweeps.mean());
    csv.add(jc_sweeps.max());
    csv.add(gs_ms);
    csv.add(jc_ms);
    csv.add(agree ? "1" : "0");
    if (!agree) {
      t.print();
      std::printf("Gauss-Seidel and Jacobi disagreed — bug.\n");
      return 1;
    }
  }
  t.print();
  csv.save("bench_holistic_convergence.csv");
  std::printf("\nCSV written to bench_holistic_convergence.csv\n");

  BenchJsonWriter json("holistic_convergence");
  const int rc = run_near_critical_section(json);
  if (!json.save()) {
    std::printf("cannot write %s\n", json.path().c_str());
    return 1;
  }
  std::printf("\nJSON written to %s\n", json.path().c_str());
  return rc;
}
