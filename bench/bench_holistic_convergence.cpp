// Experiment E8: convergence behaviour of the holistic fixed point
// ("Putting it all together"): sweeps to convergence vs. utilization, and
// the Gauss-Seidel vs. Jacobi (parallel) ablation.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/holistic.hpp"
#include "core/priority.hpp"
#include "net/topology.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/taskset_gen.hpp"

using namespace gmfnet;

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 20;
  std::printf("=== E8: holistic fixed-point convergence "
              "(%d task sets per level, Figure-1 topology) ===\n\n",
              trials);

  const auto fig = net::make_figure1_network(100'000'000);
  const std::vector<net::NodeId> hosts = {fig.host0, fig.host1, fig.host2,
                                          fig.host3};

  Table t("Sweeps to convergence and wall time");
  t.set_columns({"utilization", "converged", "GS sweeps (mean/max)",
                 "Jacobi sweeps (mean/max)", "GS ms", "Jacobi ms",
                 "fixed points agree"});
  CsvWriter csv({"utilization", "converged_frac", "gs_sweeps_mean",
                 "gs_sweeps_max", "jc_sweeps_mean", "jc_sweeps_max",
                 "gs_ms", "jc_ms", "agree"});

  for (const double util : {0.1, 0.3, 0.5, 0.7, 0.85}) {
    OnlineStats gs_sweeps, jc_sweeps;
    double gs_ms = 0, jc_ms = 0;
    int converged = 0, total = 0;
    bool agree = true;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(0xc0ffee + static_cast<std::uint64_t>(trial) * 31 +
              static_cast<std::uint64_t>(util * 1000));
      workload::TasksetParams params;
      params.num_flows = 10;
      params.total_utilization = util;
      params.deadline_factor_lo = 2.0;
      params.deadline_factor_hi = 4.0;
      auto ts = workload::generate_taskset(fig.net, hosts, params, rng);
      if (!ts) continue;
      core::assign_priorities(ts->flows,
                              core::PriorityScheme::kDeadlineMonotonic);
      core::AnalysisContext ctx(fig.net, ts->flows);
      ++total;

      core::HolisticOptions gs;
      core::HolisticOptions jc;
      jc.order = core::SweepOrder::kJacobi;
      core::HolisticResult rg, rj;
      gs_ms += wall_ms([&] { rg = core::analyze_holistic(ctx, gs); });
      jc_ms += wall_ms([&] { rj = core::analyze_holistic(ctx, jc); });
      if (rg.converged) {
        ++converged;
        gs_sweeps.add(rg.sweeps);
        if (rj.converged) {
          jc_sweeps.add(rj.sweeps);
          agree &= rg.jitters == rj.jitters;
        }
      }
    }
    t.add_row({Table::fixed(util, 2),
               Table::fixed(total ? static_cast<double>(converged) / total
                                  : 0.0,
                            2),
               Table::fixed(gs_sweeps.mean(), 1) + " / " +
                   Table::num(gs_sweeps.max()),
               Table::fixed(jc_sweeps.mean(), 1) + " / " +
                   Table::num(jc_sweeps.max()),
               Table::fixed(gs_ms, 1), Table::fixed(jc_ms, 1),
               agree ? "yes" : "NO"});
    csv.begin_row();
    csv.add(util);
    csv.add(total ? static_cast<double>(converged) / total : 0.0);
    csv.add(gs_sweeps.mean());
    csv.add(gs_sweeps.max());
    csv.add(jc_sweeps.mean());
    csv.add(jc_sweeps.max());
    csv.add(gs_ms);
    csv.add(jc_ms);
    csv.add(agree ? "1" : "0");
    if (!agree) {
      t.print();
      std::printf("Gauss-Seidel and Jacobi disagreed — bug.\n");
      return 1;
    }
  }
  t.print();
  csv.save("bench_holistic_convergence.csv");
  std::printf("\nCSV written to bench_holistic_convergence.csv\n");
  return 0;
}
