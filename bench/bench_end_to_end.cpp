// Experiment E4: the Figure-6 end-to-end bound on the paper's running
// example — the Figure-3 MPEG stream routed 0 -> 4 -> 6 -> 3 through the
// Figure-1 network (Figure 2), with and without cross traffic.
//
// Prints the per-stage decomposition (first hop / switch ingress / switch
// egress) per frame kind, exactly the pipeline Figure 6 walks.
#include <cstdio>
#include <string>

#include "core/holistic.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace gmfnet;

namespace {

std::string stage_name(const core::StageKey& st) {
  if (st.is_link()) {
    return "link(" + std::to_string(st.a.v) + "," + std::to_string(st.b.v) +
           ")";
  }
  return "in(" + std::to_string(st.a.v) + ")";
}

int run_case(const char* title, bool cross_traffic, CsvWriter& csv) {
  std::printf("--- %s ---\n\n", title);
  const auto s = workload::make_figure2_scenario(10'000'000, cross_traffic);
  core::AnalysisContext ctx(s.network, s.flows);
  const auto res = core::analyze_holistic(ctx);
  if (!res.converged) {
    std::printf("analysis diverged (unexpected)\n");
    return 1;
  }

  const char* slots[] = {"I+P", "B", "B", "P", "B", "B", "P", "B", "B"};
  const auto& fr = res.flows[0];

  Table t("Per-frame end-to-end bound of the MPEG flow (0 -> 4 -> 6 -> 3)");
  std::vector<std::string> cols = {"k", "slot", "GJ"};
  for (const auto& st : fr.frames[0].stages) {
    cols.push_back(stage_name(st.stage));
  }
  cols.push_back("R_i^k");
  cols.push_back("D_i^k");
  cols.push_back("ok");
  t.set_columns(cols);

  for (std::size_t k = 0; k < fr.frames.size(); ++k) {
    const auto& f = fr.frames[k];
    std::vector<std::string> row = {std::to_string(k), slots[k],
                                    s.flows[0].frame(k).jitter.str()};
    for (const auto& st : f.stages) row.push_back(st.hop.response.str());
    row.push_back(f.response.str());
    row.push_back(s.flows[0].frame(k).deadline.str());
    row.push_back(f.meets_deadline ? "yes" : "NO");
    t.add_row(row);

    csv.begin_row();
    csv.add(cross_traffic ? "cross" : "alone");
    csv.add(static_cast<std::int64_t>(k));
    csv.add(slots[k]);
    csv.add(f.response.to_ms());
    csv.add(s.flows[0].frame(k).deadline.to_ms());
    csv.add(f.meets_deadline ? "1" : "0");
  }
  t.print();
  std::printf("holistic sweeps: %d, schedulable: %s, worst bound: %s\n\n",
              res.sweeps, res.schedulable ? "yes" : "no",
              fr.worst_response().str().c_str());
  return res.schedulable ? 0 : 1;
}

}  // namespace

int main() {
  std::printf("=== E4: end-to-end response-time bounds on the Figure-1/2 "
              "example network ===\n\n");
  CsvWriter csv({"case", "k", "slot", "bound_ms", "deadline_ms", "ok"});
  int rc = run_case("MPEG flow alone", false, csv);
  rc |= run_case("MPEG flow with cross traffic (second video on host 1, "
                 "VoIP on host 2)",
                 true, csv);
  csv.save("bench_end_to_end.csv");
  std::printf("CSV written to bench_end_to_end.csv\n");
  return rc;
}
