// Experiment E10: ablation of the documented reading-back corrections
// (DESIGN.md #4/#5): paper-literal recurrences (no self-CIRC charges) vs.
// the sound default, and the price of each against the simulator.
//
// For each scenario we report the two bounds and the simulated worst case:
//   measured  <=  paper-literal  <=  sound      (when literal is sound)
// A scenario where "measured > paper-literal" would be concrete evidence
// that the omitted self-CIRC terms matter; slow CPUs (large CROUTE/CSEND)
// push in that direction.
#include <cstdio>
#include <string>
#include <vector>

#include "core/holistic.hpp"
#include "sim/simulator.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace gmfnet;

namespace {

struct Case {
  std::string name;
  net::Network network;
  std::vector<gmf::Flow> flows;
  Time horizon;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  {
    auto s = workload::make_figure2_scenario(10'000'000, true);
    cases.push_back(
        {"fig2-cross", std::move(s.network), std::move(s.flows),
         Time::sec(3)});
  }
  {
    // Slow-CPU switch: task costs x20 make the CIRC terms dominant.
    net::SwitchParams slow;
    slow.croute = Time::us(54);
    slow.csend = Time::us(20);
    auto star = net::make_star_network(4, 100'000'000, slow);
    std::vector<gmf::Flow> flows;
    // 12 kB packets -> 9 Ethernet frames: self-CIRC charge is 9 services.
    flows.push_back(gmf::make_sporadic_flow(
        "bulk", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
        Time::ms(20), Time::ms(20), 12'000 * 8, 1));
    flows.push_back(gmf::make_sporadic_flow(
        "peer", net::Route({star.hosts[2], star.sw, star.hosts[1]}),
        Time::ms(20), Time::ms(20), 6'000 * 8, 1));
    cases.push_back({"slow-cpu-star", std::move(star.net), std::move(flows),
                     Time::sec(3)});
  }
  {
    auto s = workload::make_videoconf_scenario(100'000'000);
    cases.push_back({"videoconf", std::move(s.network), std::move(s.flows),
                     Time::sec(2)});
  }
  return cases;
}

}  // namespace

int main() {
  std::printf("=== E10: paper-literal vs sound recurrences "
              "(self-CIRC ablation) ===\n\n");

  Table t("Worst flow bound per variant, against the simulator");
  t.set_columns({"scenario", "flow", "measured", "paper-literal", "sound",
                 "literal sound here?", "sound/literal"});
  CsvWriter csv({"scenario", "flow", "measured_ms", "literal_ms", "sound_ms",
                 "literal_ok", "overhead_ratio"});

  bool sound_ok = true;
  for (const Case& c : make_cases()) {
    core::AnalysisContext ctx(c.network, c.flows);
    core::HolisticOptions sound;
    core::HolisticOptions literal;
    literal.hop.charge_self_circ = false;
    const auto rs = core::analyze_holistic(ctx, sound);
    const auto rl = core::analyze_holistic(ctx, literal);
    if (!rs.converged || !rl.converged) {
      std::printf("[%s] divergence; skipped\n", c.name.c_str());
      continue;
    }
    sim::SimOptions opts;
    opts.horizon = c.horizon;
    sim::Simulator simulator(c.network, c.flows, opts);
    simulator.run();

    for (std::size_t f = 0; f < c.flows.size(); ++f) {
      const net::FlowId id(static_cast<std::int32_t>(f));
      const Time measured = simulator.stats(id).worst_response();
      const Time lb = rl.worst_response(id);
      const Time sb = rs.worst_response(id);
      const bool literal_ok = measured <= lb;
      sound_ok &= measured <= sb;
      const double ratio = lb.ps() > 0 ? static_cast<double>(sb.ps()) /
                                             static_cast<double>(lb.ps())
                                       : 0.0;
      t.add_row({c.name, c.flows[f].name(), measured.str(), lb.str(),
                 sb.str(), literal_ok ? "yes" : "NO (unsound here)",
                 Table::fixed(ratio, 3)});
      csv.begin_row();
      csv.add(c.name);
      csv.add(c.flows[f].name());
      csv.add(measured.to_ms());
      csv.add(lb.to_ms());
      csv.add(sb.to_ms());
      csv.add(literal_ok ? "1" : "0");
      csv.add(ratio);
    }
  }
  t.print();
  csv.save("bench_ablation_variants.csv");
  std::printf("\nsound variant upper-bounds the simulator everywhere: %s\n",
              sound_ok ? "HOLDS" : "VIOLATED (bug)");
  std::printf("CSV written to bench_ablation_variants.csv\n");
  return sound_ok ? 0 : 1;
}
