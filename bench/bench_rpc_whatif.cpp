// Wire-protocol overhead on the read path: what-if probe throughput
// through a loopback-TCP gmfnetd (rpc::Server + rpc::Client) vs the same
// probes called in-process on the published EngineSnapshot.
//
// Topology: the 4-cell campus with 128 resident VoIP flows (many small
// locality domains — probe cost is dominated by one domain's solve, so
// the wire overhead is visible, not drowned).  Three sections:
//
//   in_process       snap->what_if(c) in a loop          (the PR 3 path)
//   loopback_single  client.what_if(c) — one frame round trip per probe
//   loopback_batch16 client.what_if_batch(16) — amortized framing, probes
//                    fanned over the daemon's reader pool
//   loopback_batch16_stalled
//                    the same batches while a slow-loris peer sits on
//                    another connection stalled mid-frame — the daemon's
//                    deadline I/O must isolate it (thread-per-connection +
//                    io timeout), so healthy-connection qps must stay
//                    within 10% of the no-stall section
//
//   $ ./bench_rpc_whatif [ms_per_point]
//
// Emits BENCH_rpc_whatif.json ({section, qps, vs_in_process}).  The
// absolute numbers are informational (loopback qps measures the socket
// stack and the runner's scheduler, not this codebase).  The bench fails
// when a remote verdict disagrees with the in-process reference (a
// protocol bug), when the stalled-peer section drops below 90% of the
// no-stall baseline (an isolation bug), or when the stalled peer is not
// disconnected within the io deadline (a hardening bug).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/campus_topology.hpp"
#include "engine/analysis_engine.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "util/bench_json.hpp"
#include "util/table.hpp"

using namespace gmfnet;
using benchtopo::Campus;
using benchtopo::make_campus;
using benchtopo::voip_resident_flow;

namespace {

constexpr int kCells = 4;
constexpr int kResidents = 128;
constexpr std::size_t kBatch = 16;

double secs_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int ms_per_point = argc > 1 ? std::atoi(argv[1]) : 400;
  std::printf("=== rpc what-if throughput — loopback gmfnetd vs in-process "
              "(%d residents, %d ms/point) ===\n\n",
              kResidents, ms_per_point);

  const Campus campus = make_campus(kCells);
  auto eng = std::make_shared<engine::AnalysisEngine>(campus.net);
  for (int n = 0; n < kResidents; ++n) {
    eng->add_flow(voip_resident_flow(campus, kCells, n));
  }
  const auto snap = eng->snapshot();

  std::vector<gmf::Flow> cands;
  std::vector<bool> expect;
  for (int p = 0; p < 64; ++p) {
    cands.push_back(voip_resident_flow(campus, kCells, kResidents + p));
    expect.push_back(snap->what_if(cands.back()).admissible);
  }

  rpc::ServerConfig scfg;  // loopback, ephemeral port
  scfg.io_timeout_ms = 2'000;  // the stalled-peer section needs a deadline
  rpc::Server server(eng, scfg);
  std::thread daemon([&server] { server.serve(); });
  rpc::Client client = rpc::Client::connect_tcp("127.0.0.1",
                                                server.tcp_port());
  std::printf("daemon on tcp:127.0.0.1:%u, %zu domains\n\n",
              static_cast<unsigned>(server.tcp_port()), snap->shard_count());

  Table t("What-if probe throughput");
  t.set_columns({"section", "probes/s", "vs in-process"});
  BenchJsonWriter json("rpc_whatif");
  int bad = 0;
  double in_process_qps = 0.0;

  const auto run_section = [&](const char* section, auto&& probe_some) {
    std::int64_t done = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (secs_since(t0) * 1000.0 < ms_per_point) {
      done += probe_some(static_cast<std::size_t>(done));
    }
    const double qps = static_cast<double>(done) / secs_since(t0);
    if (in_process_qps == 0.0) in_process_qps = qps;
    const double rel = qps / in_process_qps;
    t.add_row({section, Table::fixed(qps, 0), Table::fixed(rel, 2) + "x"});
    json.begin_row();
    json.add("section", std::string(section));
    json.add("qps", qps);
    json.add("vs_in_process", rel);
    return qps;
  };

  run_section("in_process", [&](std::size_t i) {
    const std::size_t k = i % cands.size();
    if (snap->what_if(cands[k]).admissible != expect[k]) ++bad;
    return 1;
  });
  run_section("loopback_single", [&](std::size_t i) {
    const std::size_t k = i % cands.size();
    if (client.what_if(cands[k]).admissible != expect[k]) ++bad;
    return 1;
  });
  std::vector<gmf::Flow> batch(cands.begin(),
                               cands.begin() + static_cast<long>(kBatch));
  const auto batch16 = [&](std::size_t) {
    const std::vector<engine::WhatIfResult> results =
        client.what_if_batch(batch);
    for (std::size_t k = 0; k < results.size(); ++k) {
      if (results[k].admissible != expect[k]) ++bad;
    }
    return static_cast<int>(kBatch);
  };
  const double no_stall_qps = run_section("loopback_batch16", batch16);

  // Same batches while a peer on another connection stalls mid-frame
  // (best of 3 samples — loopback qps is noisy on shared runners).
  double stalled_qps = 0.0;
  bool peer_disconnected = false;
  {
    rpc::Socket stalled =
        rpc::connect_tcp("127.0.0.1", server.tcp_port());
    stalled.send_all(std::string_view(rpc::kMagic, sizeof rpc::kMagic));
    const auto stall_t0 = std::chrono::steady_clock::now();

    for (int sample = 0; sample < 3; ++sample) {
      std::int64_t done = 0;
      const auto t0 = std::chrono::steady_clock::now();
      while (secs_since(t0) * 1000.0 < ms_per_point / 2) {
        done += batch16(static_cast<std::size_t>(done));
      }
      stalled_qps =
          std::max(stalled_qps, static_cast<double>(done) / secs_since(t0));
    }
    t.add_row({"loopback_batch16_stalled", Table::fixed(stalled_qps, 0),
               Table::fixed(stalled_qps / in_process_qps, 2) + "x"});
    json.begin_row();
    json.add("section", std::string("loopback_batch16_stalled"));
    json.add("qps", stalled_qps);
    json.add("vs_in_process", stalled_qps / in_process_qps);
    json.add("vs_no_stall", stalled_qps / no_stall_qps);

    // The daemon must shed the stalled peer once its io deadline expires.
    stalled.set_recv_timeout_ms(6'000);
    char byte = 0;
    try {
      while (stalled.recv_exact(&byte, 1)) {
      }
      peer_disconnected = true;
    } catch (const rpc::TimeoutError&) {
      peer_disconnected = false;  // still connected after deadline + slack
    } catch (const rpc::TransportError&) {
      peer_disconnected = true;  // reset: equally disconnected
    }
    std::printf("stalled peer disconnected after %.1f s (io timeout %.1f "
                "s)\n\n",
                secs_since(stall_t0), scfg.io_timeout_ms / 1000.0);
  }

  client.shutdown();
  daemon.join();

  t.print();
  if (!json.save()) {
    std::printf("\nFAIL: could not write %s\n", json.path().c_str());
    return 1;
  }
  std::printf("\nJSON written to %s (informational — not perf-gated)\n",
              json.path().c_str());
  if (bad != 0) {
    std::printf("FAIL: %d remote probes disagreed with the in-process "
                "reference\n", bad);
    return 1;
  }
  if (!peer_disconnected) {
    std::printf("FAIL: stalled peer still connected past the io deadline\n");
    return 1;
  }
  if (stalled_qps < 0.9 * no_stall_qps) {
    std::printf("FAIL: stalled peer cost %.0f%% of healthy-connection qps "
                "(max allowed 10%%)\n",
                100.0 * (1.0 - stalled_qps / no_stall_qps));
    return 1;
  }
  std::printf("PASS: every remote verdict matched the in-process reference; "
              "stalled peer isolated (%.0f%% of no-stall qps)\n",
              100.0 * stalled_qps / no_stall_qps);
  return 0;
}
