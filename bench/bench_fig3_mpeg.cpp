// Experiment E1 (DESIGN.md): reproduction of Figure 3 / Figure 4 and the
// worked sums of eqs (4)-(6).
//
// The Figure-3 MPEG stream (IBBPBBPBB, transmitted as I+P B B P B B P B B,
// 30 ms apart) is projected onto link(0,4) of the Figure-1 network at
// 10 Mbit/s, printing per-frame nbits, Ethernet-frame counts and C_i^k as
// Figure 4 does.  Anchors recoverable from the paper text are printed next
// to our values: TSUM = 270 ms (exact), and the per-frame byte sizes are
// the documented substitution (Figure 4 survives only as an image).
#include <cstdio>
#include <string>

#include "ethernet/framing.hpp"
#include "gmf/link_params.hpp"
#include "gmf/mpeg.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace gmfnet;

int main() {
  std::printf("=== E1: Figure 3 / Figure 4 — GMF parameters of the MPEG "
              "stream on link(0,4) at 10 Mbit/s ===\n\n");

  const auto s = workload::make_figure2_scenario(10'000'000, false);
  const gmf::Flow& flow = s.flows[0];
  const gmf::FlowLinkParams params(flow, 10'000'000);

  const char* slot_names[] = {"I+P", "B", "B", "P", "B", "B", "P", "B", "B"};

  Table t("Per-frame parameters (Figure 4 layout)");
  t.set_columns({"k", "slot", "S (payload bytes)", "nbits (UDP bits)",
                 "Eth frames", "C_i^k on link(0,4)", "T_i^k", "GJ_i^k"});
  CsvWriter csv({"k", "slot", "payload_bytes", "nbits", "eth_frames",
                 "c_us", "t_ms", "gj_ms"});
  for (std::size_t k = 0; k < flow.frame_count(); ++k) {
    const auto& fs = flow.frame(k);
    const ethernet::Bits nbits = flow.nbits(k);
    t.add_row({std::to_string(k), slot_names[k],
               std::to_string(fs.payload_bits / 8), std::to_string(nbits),
               std::to_string(params.nframes(k)), params.c(k).str(),
               fs.min_separation.str(), fs.jitter.str()});
    csv.begin_row();
    csv.add(static_cast<std::int64_t>(k));
    csv.add(slot_names[k]);
    csv.add(fs.payload_bits / 8);
    csv.add(nbits);
    csv.add(params.nframes(k));
    csv.add(params.c(k).to_us());
    csv.add(fs.min_separation.to_ms());
    csv.add(fs.jitter.to_ms());
  }
  t.print();
  csv.save("bench_fig3_mpeg.csv");

  Table sums("Aggregate sums, eqs (4)-(6)");
  sums.set_columns({"quantity", "this repo", "paper anchor"});
  sums.add_row({"CSUM (eq 4)", params.csum().str(),
                "n/a (Figure 4 sizes not recoverable)"});
  sums.add_row({"NSUM (eq 5)", std::to_string(params.nsum()),
                "n/a (Figure 4 sizes not recoverable)"});
  sums.add_row({"TSUM (eq 6)", params.tsum().str(), "270 ms (exact match)"});
  sums.add_row({"MFT (eq 1)", params.mft().str(),
                "12304 bits / 10 Mbit/s = 1.2304 ms"});
  sums.print();

  const bool tsum_ok = params.tsum() == Time::ms(270);
  const bool mft_ok = params.mft() == Time::ns(1'230'400);
  std::printf("\nTSUM anchor: %s, MFT anchor: %s\n",
              tsum_ok ? "REPRODUCED" : "MISMATCH",
              mft_ok ? "REPRODUCED" : "MISMATCH");
  std::printf("CSV written to bench_fig3_mpeg.csv\n");
  return (tsum_ok && mft_ok) ? 0 : 1;
}
