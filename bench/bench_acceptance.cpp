// Experiment E5: acceptance ratio vs. offered utilization — the GMF
// holistic analysis against the sporadic-collapsed baseline and the
// (unsound) utilization threshold test.
//
// Standard schedulability-experiment methodology: per utilization level,
// many random GMF flow sets (UUniFast shares, random routes on a star and
// on the Figure-1 topology), each judged by the three admission policies.
// The GMF curve must dominate the sporadic curve; the gap widens with
// per-cycle size variance, which is the paper's core argument for the GMF
// model.  Cells are independent, so the sweep is parallelized.
#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "baseline/sporadic.hpp"
#include "baseline/utilization.hpp"
#include "core/holistic.hpp"
#include "core/priority.hpp"
#include "net/topology.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/taskset_gen.hpp"

using namespace gmfnet;

namespace {

struct Cell {
  std::atomic<int> gmf{0};
  std::atomic<int> sporadic{0};
  std::atomic<int> utilization{0};
  std::atomic<int> total{0};
};

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 40;
  const std::vector<double> levels = {0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6, 0.7, 0.8, 0.9};

  std::printf("=== E5: acceptance ratio vs offered utilization "
              "(%d task sets per level) ===\n\n",
              trials);

  const auto star = net::make_star_network(8, 100'000'000);
  std::vector<Cell> cells(levels.size());

  ThreadPool pool;
  pool.parallel_for(levels.size() * static_cast<std::size_t>(trials),
                    [&](std::size_t job) {
    const std::size_t li = job / static_cast<std::size_t>(trials);
    const std::size_t trial = job % static_cast<std::size_t>(trials);
    Rng rng(0x5eed0000 + job * 977 + trial);
    workload::TasksetParams params;
    params.num_flows = 8;
    params.total_utilization = levels[li];
    params.min_frames = 2;
    params.max_frames = 8;
    params.size_spread = 0.9;  // strong per-cycle variation: GMF territory
    params.deadline_factor_lo = 0.75;
    params.deadline_factor_hi = 1.5;
    auto ts = workload::generate_taskset(star.net, star.hosts, params, rng);
    if (!ts) return;
    core::assign_priorities(ts->flows,
                            core::PriorityScheme::kDeadlineMonotonic);

    Cell& c = cells[li];
    c.total.fetch_add(1);
    if (baseline::utilization_test(star.net, ts->flows)) {
      c.utilization.fetch_add(1);
    }
    core::AnalysisContext ctx(star.net, ts->flows);
    if (core::analyze_holistic(ctx).schedulable) c.gmf.fetch_add(1);
    if (baseline::analyze_sporadic_baseline(star.net, ts->flows)
            .schedulable) {
      c.sporadic.fetch_add(1);
    }
  });

  Table t("Acceptance ratio by admission policy (star, 8 hosts, 8 flows)");
  t.set_columns({"utilization", "GMF holistic", "sporadic baseline",
                 "utilization<1 (not sound)"});
  CsvWriter csv({"utilization", "gmf", "sporadic", "utilization_test",
                 "trials"});
  bool dominance = true;
  for (std::size_t li = 0; li < levels.size(); ++li) {
    const Cell& c = cells[li];
    const double n = std::max(1, c.total.load());
    const double g = c.gmf.load() / n;
    const double s = c.sporadic.load() / n;
    const double u = c.utilization.load() / n;
    dominance &= c.gmf.load() >= c.sporadic.load();
    t.add_row({Table::fixed(levels[li], 1), Table::fixed(g, 3),
               Table::fixed(s, 3), Table::fixed(u, 3)});
    csv.begin_row();
    csv.add(levels[li]);
    csv.add(g);
    csv.add(s);
    csv.add(u);
    csv.add(c.total.load());
  }
  t.print();
  csv.save("bench_acceptance.csv");
  std::printf("\nGMF dominates sporadic at every level: %s\n",
              dominance ? "yes (paper's motivating claim holds)"
                        : "NO (unexpected)");
  std::printf("CSV written to bench_acceptance.csv\n");
  return dominance ? 0 : 1;
}
