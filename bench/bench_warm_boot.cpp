// Warm boot: restoring an engine from a checkpoint vs re-solving from
// scratch on restart.
//
// A restarted admission controller without persistence must rebuild its
// world and run the cold holistic fixed point over every locality domain
// before it can answer a single probe.  With a checkpoint it deserializes
// the converged per-shard state, rebuilds the contexts, and publishes —
// zero solver runs.  Two scenarios, both on the shared bench campus:
//
//  * "campus": many small locality domains (rotating host pairs).  The
//    cold solve is cheap per domain, so the warm-boot win is modest —
//    reported for context, not gated.
//
//  * "four_domain_av": 4 hub cells of 64 flows, every 4th a camera feed
//    (av_hub_flow) — large domains at ~80% hub-link utilization, where the
//    cold fixed point is genuinely expensive.  This is the state a
//    checkpoint exists to preserve; restore must be >= 10x faster than
//    the cold boot at 256 residents (gated).
//
//   $ ./bench_warm_boot [repeats]
//
// Emits BENCH_warm_boot.json (ratio metric `speedup` is additionally gated
// by bench/check_bench_regression.py against bench/baselines/).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/campus_topology.hpp"
#include "engine/analysis_engine.hpp"
#include "io/checkpoint.hpp"
#include "util/bench_json.hpp"
#include "util/table.hpp"

using namespace gmfnet;
using benchtopo::av_hub_flow;
using benchtopo::Campus;
using benchtopo::make_campus;
using benchtopo::resident_flow;

namespace {

double wall_us(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

double median(std::vector<double> v) {
  std::nth_element(v.begin(),
                   v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2),
                   v.end());
  return v[v.size() / 2];
}

struct SectionResult {
  double cold_us = 0.0;
  double restore_us = 0.0;
  bool identical = true;
};

/// Measures both restart paths for one flow set: cold boot (rebuild engine,
/// solve every domain) vs warm boot (restore from a checkpoint blob), and
/// verifies the restored state is bit-identical with zero solver runs.
SectionResult measure(const Campus& campus,
                      const std::vector<gmf::Flow>& flows, int repeats) {
  SectionResult out;

  // The reference world: a live engine whose state gets checkpointed.
  engine::AnalysisEngine live(campus.net);
  for (const gmf::Flow& f : flows) live.add_flow(f);
  const core::HolisticResult& truth = live.evaluate();
  out.identical &= truth.converged && truth.schedulable;
  std::ostringstream blob_os;
  live.save(blob_os);
  const std::string blob = blob_os.str();

  std::vector<double> cold_samples, restore_samples;
  for (int r = 0; r < repeats; ++r) {
    // Restart path A — no checkpoint: rebuild the engine and solve every
    // domain cold before the first probe can be answered.
    cold_samples.push_back(wall_us([&] {
      engine::AnalysisEngine eng(campus.net);
      for (const gmf::Flow& f : flows) eng.add_flow(f);
      (void)eng.evaluate();
    }));

    // Restart path B — warm boot: deserialize, rebuild contexts, publish.
    std::istringstream is(blob);
    const auto t0 = std::chrono::steady_clock::now();
    engine::AnalysisEngine eng = engine::AnalysisEngine::restore(is);
    restore_samples.push_back(std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count());

    const core::HolisticResult& got = eng.evaluate();
    out.identical &= eng.stats().evaluations == 0;  // no solver runs
    out.identical &= got.schedulable == truth.schedulable;
    out.identical &= got.jitters == truth.jitters;
    out.identical &= got.flows.size() == truth.flows.size();
    for (std::size_t f = 0; out.identical && f < got.flows.size(); ++f) {
      const core::FlowId id(static_cast<std::int32_t>(f));
      out.identical &= got.worst_response(id) == truth.worst_response(id);
    }
  }
  out.cold_us = median(std::move(cold_samples));
  out.restore_us = median(std::move(restore_samples));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int repeats = std::max(3, argc > 1 ? std::atoi(argv[1]) : 7);
  std::printf("=== warm boot: checkpoint restore vs cold engine re-solve "
              "(median of %d) ===\n\n",
              repeats);

  Table t("Restart-to-probe-ready cost");
  t.set_columns({"section", "residents", "cold boot us", "restore us",
                 "speedup", "bit-identical"});
  BenchJsonWriter json("warm_boot");

  bool bar_met = true;
  bool all_identical = true;
  const auto record = [&](const std::string& section, int residents,
                          const SectionResult& r) {
    const double speedup = r.cold_us / r.restore_us;
    all_identical &= r.identical;
    t.add_row({section, std::to_string(residents), Table::fixed(r.cold_us, 1),
               Table::fixed(r.restore_us, 1), Table::fixed(speedup, 1) + "x",
               r.identical ? "yes" : "NO"});
    json.begin_row();
    json.add("section", section);
    json.add("residents", residents);
    json.add("cold_us", r.cold_us);
    json.add("restore_us", r.restore_us);
    json.add("speedup", speedup);
    json.add("identical", r.identical);
    return speedup;
  };

  // Many-small-domains campus: context rebuild dominates both paths, so
  // the warm-boot win is modest here (reported, not gated).
  const Campus campus = make_campus(8);
  for (const int residents : {64, 256}) {
    std::vector<gmf::Flow> flows;
    for (int n = 0; n < residents; ++n) {
      flows.push_back(resident_flow(campus, 8, n));
    }
    (void)record("campus", residents, measure(campus, flows, repeats));
  }

  // Four large audio/video domains: the cold fixed point dominates the
  // restart, which is exactly the state worth persisting.  Gated >= 10x.
  const Campus hub = make_campus(4);
  {
    std::vector<gmf::Flow> flows;
    for (int n = 0; n < 256; ++n) flows.push_back(av_hub_flow(hub, 4, n));
    const double speedup =
        record("four_domain_av", 256, measure(hub, flows, repeats));
    if (speedup < 10.0) bar_met = false;
  }
  t.print();

  if (json.save()) {
    std::printf("\nJSON written to %s\n", json.path().c_str());
  } else {
    std::printf("\nFAIL: could not write %s\n", json.path().c_str());
    return 1;
  }
  if (!all_identical) {
    std::printf("FAIL: a restored engine was not bit-identical to the saved "
                "engine (or restore ran the solver, or a reference world "
                "was not schedulable).\n");
    return 1;
  }
  if (!bar_met) {
    std::printf("FAIL: warm boot < 10x faster than cold boot on "
                "four_domain_av at 256 residents.\n");
    return 1;
  }
  std::printf("PASS: checkpoint restore >= 10x faster than a cold re-solve "
              "on the 4-domain AV scenario at 256 residents, restored state "
              "bit-identical, zero solver runs on restore.\n");
  return 0;
}
