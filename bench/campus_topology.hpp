// Shared bench topology: a "campus" of independent star cells (one switch
// + kHostsPerCell phones each), the shape an operator's admission
// controller actually serves.  Used by bench_admission_scaling and
// bench_concurrent_whatif so the two benches measure the same world.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "gmf/flow.hpp"
#include "net/network.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::benchtopo {

constexpr int kHostsPerCell = 8;
constexpr ethernet::LinkSpeedBps kSpeed = 100'000'000;

struct Campus {
  net::Network net;
  // hosts[cell][i]
  std::vector<std::vector<net::NodeId>> hosts;
  std::vector<net::NodeId> switches;
};

inline Campus make_campus(int cells) {
  Campus c;
  for (int cell = 0; cell < cells; ++cell) {
    const net::NodeId sw = c.net.add_switch("sw" + std::to_string(cell));
    c.switches.push_back(sw);
    c.hosts.emplace_back();
    for (int h = 0; h < kHostsPerCell; ++h) {
      const net::NodeId host = c.net.add_endhost(
          "c" + std::to_string(cell) + "h" + std::to_string(h));
      c.net.add_duplex_link(host, sw, kSpeed);
      c.hosts.back().push_back(host);
    }
  }
  return c;
}

/// The camera feed of the paper's multimedia workload shape: a 4-frame GMF
/// cycle, one 20 kB I-frame then three 3 kB P-frames at 25 fps — much
/// heavier to analyse than a sporadic call.
inline gmf::Flow camera_flow(const std::string& name, net::Route route) {
  std::vector<gmf::FrameSpec> frames;
  for (int k = 0; k < 4; ++k) {
    gmf::FrameSpec fs;
    fs.min_separation = gmfnet::Time::ms(40);
    fs.deadline = gmfnet::Time::ms(100);
    fs.jitter = gmfnet::Time::ms(1);
    fs.payload_bits = (k == 0 ? 20000 : 3000) * 8;
    frames.push_back(fs);
  }
  return gmf::Flow(name, std::move(route), std::move(frames), /*priority=*/1);
}

/// Resident flow n in cell (n % cells) between a rotating host pair of
/// that cell: alternately a VoIP call and a camera feed.  Host pairs are
/// link-disjoint, so each pair is its own locality domain.
inline gmf::Flow resident_flow(const Campus& c, int cells, int n) {
  const int cell = n % cells;
  const int pair = (n / cells) % (kHostsPerCell / 2);
  const auto a = static_cast<std::size_t>(2 * pair);
  const auto b = a + 1;
  net::Route route({c.hosts[static_cast<std::size_t>(cell)][a],
                    c.switches[static_cast<std::size_t>(cell)],
                    c.hosts[static_cast<std::size_t>(cell)][b]});
  if (n % 2 == 0) {
    return workload::make_voip_flow("call" + std::to_string(n),
                                    std::move(route), gmfnet::Time::ms(20),
                                    /*priority=*/5);
  }
  return camera_flow("cam" + std::to_string(n), std::move(route));
}

/// VoIP-only variant of resident_flow (uniform probe cost; used by the
/// concurrent-throughput bench).
inline gmf::Flow voip_resident_flow(const Campus& c, int cells, int n) {
  const int cell = n % cells;
  const int pair = (n / cells) % (kHostsPerCell / 2);
  const auto a = static_cast<std::size_t>(2 * pair);
  net::Route route({c.hosts[static_cast<std::size_t>(cell)][a],
                    c.switches[static_cast<std::size_t>(cell)],
                    c.hosts[static_cast<std::size_t>(cell)][a + 1]});
  return workload::make_voip_flow("call" + std::to_string(n),
                                  std::move(route), gmfnet::Time::ms(20),
                                  /*priority=*/5);
}

/// Resident flow n of the four_domain scenario: every flow of cell
/// (n % cells) is sourced at the cell's hub host 0, so the whole cell is
/// one link-sharing component (one locality domain per cell).
inline gmf::Flow hub_flow(const Campus& c, int cells, int n) {
  const int cell = n % cells;
  const auto dst =
      static_cast<std::size_t>(1 + (n / cells) % (kHostsPerCell - 1));
  net::Route route({c.hosts[static_cast<std::size_t>(cell)][0],
                    c.switches[static_cast<std::size_t>(cell)],
                    c.hosts[static_cast<std::size_t>(cell)][dst]});
  return workload::make_voip_flow("hub" + std::to_string(n), std::move(route),
                                  gmfnet::Time::ms(20), /*priority=*/5);
}

/// Audio/video variant of hub_flow (the warm-boot bench's solve-heavy hard
/// case): every 4th flow of a cell is a 25 fps camera feed (16 kB I-frame +
/// three 3 kB P-frames, priority above the calls), the rest are VoIP legs
/// on a relaxed 80 ms regional budget.  ~80% utilization on each cell's
/// hub uplink makes the cold fixed point genuinely expensive while staying
/// schedulable — restoring this state is what a checkpoint is for.
inline gmf::Flow av_hub_flow(const Campus& c, int cells, int n) {
  const int cell = n % cells;
  const auto dst =
      static_cast<std::size_t>(1 + (n / cells) % (kHostsPerCell - 1));
  net::Route route({c.hosts[static_cast<std::size_t>(cell)][0],
                    c.switches[static_cast<std::size_t>(cell)],
                    c.hosts[static_cast<std::size_t>(cell)][dst]});
  if ((n / cells) % 4 == 0) {
    std::vector<gmf::FrameSpec> frames;
    for (int k = 0; k < 4; ++k) {
      gmf::FrameSpec fs;
      fs.min_separation = gmfnet::Time::ms(40);
      fs.deadline = gmfnet::Time::ms(100);
      fs.jitter = gmfnet::Time::ms(1);
      fs.payload_bits = (k == 0 ? 16000 : 3000) * 8;
      frames.push_back(fs);
    }
    return gmf::Flow("cam" + std::to_string(n), std::move(route),
                     std::move(frames), /*priority=*/6);
  }
  return workload::make_voip_flow("call" + std::to_string(n),
                                  std::move(route), gmfnet::Time::ms(80),
                                  /*priority=*/5);
}

}  // namespace gmfnet::benchtopo
