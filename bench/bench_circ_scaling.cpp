// Experiments E2 + E3: the CIRC worked example of §3.3 (4 interfaces,
// CROUTE=2.7us, CSEND=1.0us -> CIRC=14.8us) and the Conclusions' scaling
// table (network processor with m CPUs serving 48 ports; CIRC=11.1us at
// m=16, "comfortably deals with 1 Gbit/s").
#include <cstdio>
#include <string>
#include <vector>

#include "ethernet/framing.hpp"
#include "switchsim/switch_model.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace gmfnet;

int main() {
  const Time croute = Time::ns(2700);
  const Time csend = Time::ns(1000);

  std::printf("=== E2: CIRC worked example (Section 3.3) ===\n\n");
  Table t2("CIRC(N) = NINTERFACES x (CROUTE + CSEND)");
  t2.set_columns({"interfaces", "CIRC (this repo)", "paper"});
  t2.add_row({"4", switchsim::circ(4, croute, csend).str(), "14.8 us"});
  t2.print();
  const bool e2_ok = switchsim::circ(4, croute, csend) == Time::us_f(14.8);
  std::printf("anchor: %s\n\n", e2_ok ? "REPRODUCED" : "MISMATCH");

  std::printf("=== E3: multiprocessor scaling (Conclusions) ===\n\n");
  Table t3("48-port switch, interfaces partitioned over m CPUs");
  t3.set_columns({"CPUs", "ifaces/CPU", "CIRC", "sustains 100 Mbit/s",
                  "sustains 1 Gbit/s"});
  CsvWriter csv({"cpus", "ifaces_per_cpu", "circ_us", "ok_100m", "ok_1g"});
  bool e3_circ_ok = false;
  bool e3_gig_ok = false;
  for (const int cpus : {1, 2, 4, 8, 12, 16, 24, 48}) {
    const int per = switchsim::interfaces_per_processor(48, cpus);
    const Time circ = switchsim::circ_multiproc(48, cpus, croute, csend);
    const bool ok100 = switchsim::sustains_linkspeed(circ, 100'000'000);
    const bool ok1g = switchsim::sustains_linkspeed(circ, 1'000'000'000);
    t3.add_row({std::to_string(cpus), std::to_string(per), circ.str(),
                ok100 ? "yes" : "no", ok1g ? "yes" : "no"});
    csv.begin_row();
    csv.add(cpus);
    csv.add(per);
    csv.add(circ.to_us());
    csv.add(ok100 ? "1" : "0");
    csv.add(ok1g ? "1" : "0");
    if (cpus == 16) {
      e3_circ_ok = circ == Time::us_f(11.1);
      e3_gig_ok = ok1g;
    }
  }
  t3.print();
  csv.save("bench_circ_scaling.csv");
  std::printf("paper anchors at m=16: CIRC=11.1us -> %s; 1 Gbit/s "
              "sustained -> %s\n",
              e3_circ_ok ? "REPRODUCED" : "MISMATCH",
              e3_gig_ok ? "REPRODUCED" : "MISMATCH");

  std::printf("\nReference MFTs: 100 Mbit/s -> %s, 1 Gbit/s -> %s\n",
              ethernet::max_frame_transmission_time(100'000'000).str().c_str(),
              ethernet::max_frame_transmission_time(1'000'000'000).str().c_str());
  std::printf("CSV written to bench_circ_scaling.csv\n");
  return (e2_ok && e3_circ_ok && e3_gig_ok) ? 0 : 1;
}
