// Experiment E12: sensitivity of the paper's worked example — slack per
// flow, bottleneck stages, and the two capacity questions an operator asks:
// "how much bigger can the video get?" and "how much faster must the links
// be if it doubles?".
#include <cstdio>
#include <string>

#include "core/sensitivity.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace gmfnet;

namespace {

std::string stage_name(const core::StageKey& st) {
  if (st.is_link()) {
    return "link(" + std::to_string(st.a.v) + "," + std::to_string(st.b.v) +
           ")";
  }
  return "in(" + std::to_string(st.a.v) + ")";
}

}  // namespace

int main() {
  std::printf("=== E12: sensitivity analysis of the Figure-1/2 scenario "
              "===\n\n");

  const auto s = workload::make_figure2_scenario(10'000'000, true);
  core::AnalysisContext ctx(s.network, s.flows);

  const auto slack = core::compute_slack(ctx);
  if (!slack) {
    std::printf("analysis diverged (unexpected)\n");
    return 1;
  }

  Table t("Per-flow slack and bottleneck stage");
  t.set_columns({"flow", "critical frame", "slack", "bottleneck stage",
                 "stage share of bound"});
  CsvWriter csv({"flow", "critical_frame", "slack_ms", "bottleneck",
                 "bottleneck_ms"});
  for (const core::FlowSlack& fs : *slack) {
    const auto& flow = s.flows[static_cast<std::size_t>(fs.flow.v)];
    t.add_row({flow.name(), std::to_string(fs.critical_frame),
               fs.slack.str(), stage_name(fs.bottleneck),
               fs.bottleneck_response.str()});
    csv.begin_row();
    csv.add(flow.name());
    csv.add(static_cast<std::int64_t>(fs.critical_frame));
    csv.add(fs.slack.to_ms());
    csv.add(stage_name(fs.bottleneck));
    csv.add(fs.bottleneck_response.to_ms());
  }
  t.print();
  csv.save("bench_sensitivity.csv");

  const core::ScalingResult scale =
      core::max_payload_scaling(s.network, s.flows);
  std::printf("\nmax uniform payload scaling keeping all deadlines: "
              "%.3fx (%lld probes)\n",
              scale.max_factor, static_cast<long long>(scale.probes));

  const auto doubled = core::scale_payloads(s.flows, 2.0);
  const auto speedup = core::min_speed_scaling(s.network, doubled);
  if (speedup) {
    std::printf("with 2x payloads, links must be >= %.3fx faster\n",
                *speedup);
  } else {
    std::printf("with 2x payloads, no <=16x link speed-up suffices\n");
  }
  return scale.max_factor > 0 ? 0 : 1;
}
