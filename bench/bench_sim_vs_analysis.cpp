// Experiment E6: empirical validation and tightness of the analytical
// bounds — simulated worst-case response vs. the holistic bound, per flow,
// across the paper's example scenario and randomized task sets.
//
// Soundness requires measured <= bound for every delivered packet; the
// tightness ratio (bound / measured) quantifies the pessimism introduced by
// the MFT blocking, CIRC service and jitter-propagation terms.
#include <cstdio>
#include <string>
#include <vector>

#include "core/holistic.hpp"
#include "sim/simulator.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"
#include "workload/taskset_gen.hpp"

using namespace gmfnet;

namespace {

struct Row {
  std::string scenario;
  std::string flow;
  Time measured;
  Time bound;
  bool sound;
};

void run_scenario(const std::string& name, const net::Network& network,
                  const std::vector<gmf::Flow>& flows, Time horizon,
                  std::uint64_t seed, std::vector<Row>& rows) {
  core::AnalysisContext ctx(network, flows);
  const auto bound = core::analyze_holistic(ctx);
  if (!bound.converged) {
    std::printf("  [%s] analysis diverged; skipped\n", name.c_str());
    return;
  }
  sim::SimOptions opts;
  opts.horizon = horizon;
  opts.seed = seed;
  opts.source.model = sim::ArrivalModel::kPeriodic;  // densest legal
  sim::Simulator simulator(network, flows, opts);
  simulator.run();

  for (std::size_t f = 0; f < flows.size(); ++f) {
    const net::FlowId id(static_cast<std::int32_t>(f));
    const auto& st = simulator.stats(id);
    Row r;
    r.scenario = name;
    r.flow = flows[f].name();
    r.measured = st.worst_response();
    r.bound = bound.flows[f].worst_response();
    r.sound = true;
    for (std::size_t k = 0; k < flows[f].frame_count(); ++k) {
      if (st.per_kind[k].count() > 0 &&
          st.max_response[k] > bound.flows[f].frames[k].response) {
        r.sound = false;
      }
    }
    rows.push_back(r);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int sweep_seeds = argc > 1 ? std::atoi(argv[1]) : 5;
  std::printf("=== E6: simulated worst case vs analytical bound ===\n\n");

  std::vector<Row> rows;

  {
    const auto s = workload::make_figure2_scenario(10'000'000, false);
    run_scenario("fig2-alone", s.network, s.flows, Time::sec(5), 1, rows);
  }
  {
    const auto s = workload::make_figure2_scenario(10'000'000, true);
    run_scenario("fig2-cross", s.network, s.flows, Time::sec(5), 2, rows);
  }
  {
    const auto s = workload::make_videoconf_scenario(100'000'000);
    run_scenario("videoconf", s.network, s.flows, Time::sec(3), 3, rows);
  }
  {
    const auto s = workload::make_voip_office_scenario(6, 100'000'000);
    run_scenario("voip-office", s.network, s.flows, Time::sec(3), 4, rows);
  }
  for (int seed = 1; seed <= sweep_seeds; ++seed) {
    const auto star = net::make_star_network(6, 100'000'000);
    Rng rng(static_cast<std::uint64_t>(seed));
    workload::TasksetParams params;
    params.num_flows = 6;
    params.total_utilization = 0.35;
    params.deadline_factor_lo = 4.0;
    params.deadline_factor_hi = 8.0;
    auto ts = workload::generate_taskset(star.net, star.hosts, params, rng);
    if (!ts) continue;
    run_scenario("random-" + std::to_string(seed), star.net, ts->flows,
                 Time::sec(1), static_cast<std::uint64_t>(seed) + 100, rows);
  }

  Table t("Measured worst response vs holistic bound");
  t.set_columns({"scenario", "flow", "measured", "bound", "tightness",
                 "sound"});
  CsvWriter csv({"scenario", "flow", "measured_ms", "bound_ms", "ratio",
                 "sound"});
  OnlineStats ratios;
  bool all_sound = true;
  for (const Row& r : rows) {
    const double ratio = r.measured.ps() > 0
                             ? static_cast<double>(r.bound.ps()) /
                                   static_cast<double>(r.measured.ps())
                             : 0.0;
    if (ratio > 0) ratios.add(ratio);
    all_sound &= r.sound;
    t.add_row({r.scenario, r.flow, r.measured.str(), r.bound.str(),
               Table::fixed(ratio, 2), r.sound ? "yes" : "VIOLATED"});
    csv.begin_row();
    csv.add(r.scenario);
    csv.add(r.flow);
    csv.add(r.measured.to_ms());
    csv.add(r.bound.to_ms());
    csv.add(ratio);
    csv.add(r.sound ? "1" : "0");
  }
  t.print();
  csv.save("bench_sim_vs_analysis.csv");

  std::printf("\nsoundness (measured <= bound everywhere): %s\n",
              all_sound ? "HOLDS" : "VIOLATED");
  std::printf("tightness ratio bound/measured: mean %.2f, min %.2f, max "
              "%.2f over %zu flows\n",
              ratios.mean(), ratios.min(), ratios.max(), ratios.count());
  std::printf("CSV written to bench_sim_vs_analysis.csv\n");
  return all_sound ? 0 : 1;
}
