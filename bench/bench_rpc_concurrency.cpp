// Reactor concurrency: sustained qps + tail latency of the epoll-reactor
// gmfnetd under hundreds of concurrent connections with mixed writer /
// reader traffic, against the PR 7 deployment model (thread-per-connection
// server, synchronous one-frame-at-a-time clients) as the baseline.
//
// This is a SYSTEM-vs-SYSTEM comparison, end to end.  The baseline runs
// the full PR 7 contract: synchronous clients, classic ADMIT, and what-if
// responses that carry the complete O(world) HolisticResult — the only
// wire form that system had.  The reactor side runs what the rebuild
// ships: frame pipelining, verdict-only probes, single-flow ADMIT_BATCH
// frames with lean bitmap responses, and coalesced group commits.  The 3x
// gate therefore measures what the rebuild delivers to an operator, not
// any single mechanism in isolation.  (The in-bench threaded server DOES
// honor verdict_only when asked — baseline clients simply never ask,
// because that request flag did not exist before the rebuild.)
//
// Topology: a 64-cell campus where every host pair is its own locality
// domain.  Pairs 0-1 of each cell hold the resident base world and the
// reader probe candidates; pairs 2-3 are reserved one-per-writer, so every
// writer's admission verdicts depend only on its OWN earlier admits — the
// whole storm is deterministic and replayable on an in-process mirror
// engine no matter how the daemon interleaves connections.
//
// Traffic per section: 10% of the connections are writers, the rest are
// readers.  A writer first admits its private budget of 24 flows (even
// reactor writers pipeline single-flow ADMIT_BATCH frames — the coalescing
// path; odd writers send the budget as one ADMIT_BATCH; baseline writers
// issue synchronous classic ADMITs), then probes like a reader.  Readers
// issue single-candidate WHAT_IF_BATCH probes whose verdicts are constant
// by construction and checked against the precomputed expectation on every
// response.  Reactor reader connections pipeline (the new client API) and
// multiplex over four driver threads — the client-side economics the
// reactor enables; baseline clients are synchronous with a blocking
// thread per connection (all the PR 7 client could do).
//
// Sections:
//   threaded_500   in-bench thread-per-connection server, 500 connections
//   reactor_100 / reactor_500 / reactor_1000
//
//   $ ./bench_rpc_concurrency [ms_per_point] [--soak]
//
// --soak runs only the 1000-connection reactor section with full verdict
// checking and no perf gates (the CI TSan soak).  Otherwise emits
// BENCH_rpc_concurrency.json and FAILS when any verdict disagrees with the
// mirror (probe, admission replay, or final world), when any client hits a
// transport error, when no commits coalesced at 500 connections, or when
// reactor_500 qps < 3x threaded_500 qps — the number that justifies the
// reactor rebuild.
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "bench/campus_topology.hpp"
#include "engine/analysis_engine.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "util/bench_json.hpp"
#include "util/table.hpp"

using namespace gmfnet;
using benchtopo::Campus;
using benchtopo::make_campus;

namespace {

constexpr int kCells = 64;
constexpr int kProbeCands = 128;
constexpr int kWriterBudget = 24;
constexpr int kWriterDepth = 8;  ///< writer pipeline depth (reactor mode)
constexpr int kReaderDepth = 4;  ///< per-connection probe pipeline depth
constexpr int kDrivers = 4;      ///< reader driver threads (reactor mode)

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// A VoIP call between the two hosts of `pair` in `cell` — one locality
/// domain per pair, the bench's unit of isolation.  `deadline` defaults to
/// a comfortable 20 ms; callers pass kTightDeadline to make a flow that
/// cannot meet its bound, so storm traffic carries a real admit/reject mix
/// instead of all-admissible candidates.
constexpr Time kTightDeadline = Time::us(30);

gmf::Flow pair_call(const Campus& c, int cell, int pair,
                    const std::string& name,
                    Time deadline = Time::ms(20)) {
  const auto cl = static_cast<std::size_t>(cell);
  const auto a = static_cast<std::size_t>(2 * pair);
  net::Route route({c.hosts[cl][a], c.switches[cl], c.hosts[cl][a + 1]});
  return workload::make_voip_flow(name, std::move(route), deadline,
                                  /*priority=*/5);
}

/// The base world: two calls on pair 0 and one on pair 1 of every cell.
std::vector<gmf::Flow> base_flows(const Campus& campus) {
  std::vector<gmf::Flow> flows;
  for (int cell = 0; cell < kCells; ++cell) {
    const std::string p = "b" + std::to_string(cell);
    flows.push_back(pair_call(campus, cell, 0, p + "a"));
    flows.push_back(pair_call(campus, cell, 0, p + "b"));
    flows.push_back(pair_call(campus, cell, 1, p + "c"));
  }
  return flows;
}

std::shared_ptr<engine::AnalysisEngine> make_engine(
    const Campus& campus, const std::vector<gmf::Flow>& base) {
  auto eng = std::make_shared<engine::AnalysisEngine>(campus.net);
  for (const auto& f : base) eng->add_flow(f);
  (void)eng->snapshot();  // converge + publish the base world
  return eng;
}

// ------------------------------------------------------------------------
// The PR 7 deployment model, embedded for the ratio: one blocking thread
// per connection, classic try_admit per ADMIT (no coalescing, no
// pipelining API on the client side).
class ThreadedServer {
 public:
  explicit ThreadedServer(std::shared_ptr<engine::AnalysisEngine> eng)
      : eng_(std::move(eng)),
        listener_(rpc::Listener::listen_tcp("127.0.0.1", 0)) {}

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  void start() {
    accept_ = std::thread([this] { accept_loop(); });
  }

  void stop() {
    stop_.store(true, std::memory_order_release);
    listener_.close();
    if (accept_.joinable()) accept_.join();
    for (auto& t : handlers_) t.join();
  }

 private:
  void accept_loop() {
    while (!stop_.load(std::memory_order_acquire)) {
      rpc::Socket s;
      try {
        s = listener_.accept(200);
      } catch (const rpc::TransportError&) {
        break;  // listener closed under us: winding down
      }
      if (!s.valid()) continue;
      handlers_.emplace_back(
          [this, sock = std::move(s)]() mutable { handle(std::move(sock)); });
    }
  }

  void handle(rpc::Socket s) {
    try {
      std::string frame;
      while (!stop_.load(std::memory_order_acquire)) {
        const rpc::FrameStatus st = rpc::recv_frame_idle(s, frame, 200);
        if (st == rpc::FrameStatus::kIdle) continue;
        if (st == rpc::FrameStatus::kEof) return;
        rpc::Response resp = handle_one(rpc::decode_request(frame));
        rpc::send_frame(s, rpc::encode_response(resp));
      }
    } catch (...) {
      // Peer gone or stream corrupt: drop the connection, daemon lives on.
    }
  }

  rpc::Response handle_one(rpc::Request&& req) {
    if (auto* w = std::get_if<rpc::WhatIfBatchRequest>(&req)) {
      const auto snap = eng_->published();
      rpc::WhatIfBatchResponse out;
      out.results.reserve(w->candidates.size());
      for (const auto& c : w->candidates) {
        engine::WhatIfResult wi = snap->what_if(c);
        // Honor verdict_only like the reactor does: the baseline loses on
        // architecture, not on response payload.
        out.results.push_back(w->verdict_only
                                  ? engine::WhatIfResult::verdict_only(
                                        wi.admissible, wi.converged(),
                                        wi.sweeps(), wi.flow_count())
                                  : std::move(wi));
      }
      return out;
    }
    if (auto* a = std::get_if<rpc::AdmitRequest>(&req)) {
      std::lock_guard<std::mutex> lock(mu_);
      return rpc::AdmitResponse{eng_->try_admit(a->flow)};
    }
    if (auto* r = std::get_if<rpc::RemoveRequest>(&req)) {
      std::lock_guard<std::mutex> lock(mu_);
      const bool removed = eng_->remove_flow(r->index);
      if (removed) eng_->evaluate();
      return rpc::RemoveResponse{removed};
    }
    return rpc::ErrorResponse{"unsupported by the thread-per-connection baseline"};
  }

  std::shared_ptr<engine::AnalysisEngine> eng_;
  std::mutex mu_;  ///< the old global writer mutex
  rpc::Listener listener_;
  std::atomic<bool> stop_{false};
  std::thread accept_;
  std::vector<std::thread> handlers_;  ///< touched by the accept thread only
};

// ------------------------------------------------------------------------
// Client storm shared state.
struct Storm {
  std::uint16_t port = 0;
  const std::vector<gmf::Flow>* cands = nullptr;
  const std::vector<bool>* expect = nullptr;
  std::atomic<bool> stop{false};
  std::atomic<int> connected{0};
  std::atomic<std::uint64_t> ops{0};
  std::atomic<int> bad{0};
  std::atomic<int> errors{0};
  std::mutex start_mu;
  std::condition_variable start_cv;
  bool started = false;  ///< guarded by start_mu
};

void wait_start(Storm& sh) {
  std::unique_lock<std::mutex> lock(sh.start_mu);
  sh.start_cv.wait(lock, [&] { return sh.started; });
}

rpc::Client connect_retry(std::uint16_t port) {
  rpc::ClientConfig cfg;
  cfg.request_timeout_ms = 120'000;  // sized for the TSan soak, not health
  for (int attempt = 0;; ++attempt) {
    try {
      return rpc::Client::connect_tcp("127.0.0.1", port, cfg);
    } catch (const rpc::TransportError&) {
      if (attempt >= 5) throw;  // a 1000-way connect storm can drop a few
      std::this_thread::sleep_for(std::chrono::milliseconds(20 << attempt));
    }
  }
}

/// Reader inner loop, shared by readers and post-budget writers.  Reactor
/// mode pipelines `kDepth` probes; baseline mode is strictly synchronous.
void probe_loop(rpc::Client& cl, Storm& sh, std::vector<double>& lat,
                std::size_t next, bool pipelined) {
  const auto& cands = *sh.cands;
  const auto& expect = *sh.expect;
  std::uint64_t local_ops = 0;
  const auto check = [&](const rpc::WhatIfBatchResponse& r, std::size_t k) {
    if (r.results.size() != 1 ||
        r.results[0].admissible != expect[k % cands.size()]) {
      sh.bad.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (!pipelined) {
    // Baseline readers: the PR 7 client contract — synchronous what_if
    // whose response carries the full O(world) HolisticResult (the lean
    // verdict-only form ships with the reactor rebuild).
    while (!sh.stop.load(std::memory_order_relaxed)) {
      const auto t0 = Clock::now();
      const auto verdict = cl.what_if(cands[next % cands.size()]);
      lat.push_back(ms_since(t0));
      if (verdict.admissible != expect[next % cands.size()]) {
        sh.bad.fetch_add(1, std::memory_order_relaxed);
      }
      ++next;
      ++local_ops;
    }
    sh.ops.fetch_add(local_ops, std::memory_order_relaxed);
    return;
  }
  std::deque<std::pair<Clock::time_point, std::size_t>> inflight;
  const auto submit_one = [&] {
    cl.submit(rpc::WhatIfBatchRequest{{cands[next % cands.size()]},
                                      /*verdict_only=*/true});
    inflight.emplace_back(Clock::now(), next);
    ++next;
  };
  for (int d = 0; d < kWriterDepth; ++d) submit_one();
  while (!sh.stop.load(std::memory_order_relaxed)) {
    const auto r = cl.collect_as<rpc::WhatIfBatchResponse>();
    lat.push_back(ms_since(inflight.front().first));
    check(r, inflight.front().second);
    inflight.pop_front();
    ++local_ops;
    submit_one();
  }
  while (cl.pending() > 0) {  // drain the tail (uncounted: past the clock)
    const auto r = cl.collect_as<rpc::WhatIfBatchResponse>();
    check(r, inflight.front().second);
    inflight.pop_front();
  }
  sh.ops.fetch_add(local_ops, std::memory_order_relaxed);
}

void reader_worker(Storm& sh, std::vector<double>& lat, int id,
                   bool pipelined) {
  bool counted = false;
  try {
    rpc::Client cl = connect_retry(sh.port);
    counted = true;
    sh.connected.fetch_add(1, std::memory_order_release);
    wait_start(sh);
    probe_loop(cl, sh, lat, static_cast<std::size_t>(id), pipelined);
  } catch (const std::exception&) {
    sh.errors.fetch_add(1, std::memory_order_relaxed);
    if (!counted) sh.connected.fetch_add(1, std::memory_order_release);
  }
}

/// A writer admits its private budget (recording every verdict for the
/// mirror replay), then turns into a reader for the rest of the section.
void writer_worker(Storm& sh, std::vector<double>& lat, int id,
                   const std::vector<gmf::Flow>& flows,
                   std::vector<std::uint8_t>& verdicts, bool pipelined) {
  bool counted = false;
  try {
    rpc::Client cl = connect_retry(sh.port);
    counted = true;
    sh.connected.fetch_add(1, std::memory_order_release);
    wait_start(sh);
    std::uint64_t local_ops = 0;
    if (pipelined && (id % 2 == 1)) {
      // Odd reactor writers: the whole budget as one ADMIT_BATCH frame.
      const auto t0 = Clock::now();
      const auto r = cl.admit_batch(flows);
      lat.push_back(ms_since(t0));
      verdicts.assign(r.admitted.begin(), r.admitted.end());
      local_ops += flows.size();
    } else if (pipelined) {
      // Even reactor writers: pipelined single-flow ADMIT_BATCH frames —
      // still one admission per frame, but the frames queue behind the
      // mutation worker, coalesce into group commits, and come back with
      // the lean verdict bitmap instead of an O(world) HolisticResult.
      std::deque<Clock::time_point> sent;
      std::size_t submitted = 0;
      while (submitted < flows.size() &&
             static_cast<int>(submitted) < kWriterDepth) {
        cl.submit(rpc::AdmitBatchRequest{{flows[submitted++]}});
        sent.push_back(Clock::now());
      }
      while (!sent.empty()) {
        const auto r = cl.collect_as<rpc::AdmitBatchResponse>();
        lat.push_back(ms_since(sent.front()));
        sent.pop_front();
        verdicts.push_back(r.admitted.size() == 1 && r.admitted[0] != 0 ? 1
                                                                        : 0);
        ++local_ops;
        if (submitted < flows.size()) {
          cl.submit(rpc::AdmitBatchRequest{{flows[submitted++]}});
          sent.push_back(Clock::now());
        }
      }
    } else {
      // Baseline writers: synchronous classic ADMITs — full-payload
      // responses, the only admission call the PR 7 system had.
      for (const auto& f : flows) {
        const auto t0 = Clock::now();
        verdicts.push_back(cl.admit(f).has_value() ? 1 : 0);
        lat.push_back(ms_since(t0));
        ++local_ops;
        if (sh.stop.load(std::memory_order_relaxed)) break;
      }
    }
    sh.ops.fetch_add(local_ops, std::memory_order_relaxed);
    if (!sh.stop.load(std::memory_order_relaxed)) {
      probe_loop(cl, sh, lat, static_cast<std::size_t>(id) * 31, pipelined);
    }
  } catch (const std::exception&) {
    sh.errors.fetch_add(1, std::memory_order_relaxed);
    if (!counted) sh.connected.fetch_add(1, std::memory_order_release);
  }
}

/// One reactor-mode driver thread multiplexing many pipelined connections
/// round-robin — the deployment model the reactor + pipelined client
/// enables (the threaded baseline needs a blocking thread per connection).
void driver_worker(Storm& sh, std::vector<double>& lat, int driver_id,
                   int nconns) {
  struct ConnState {
    std::optional<rpc::Client> cl;
    std::deque<std::pair<Clock::time_point, std::size_t>> inflight;
    std::size_t next = 0;
  };
  const auto& cands = *sh.cands;
  const auto& expect = *sh.expect;
  std::vector<ConnState> conns(static_cast<std::size_t>(nconns));
  int connected_here = 0;
  try {
    for (auto& cs : conns) {
      cs.cl.emplace(connect_retry(sh.port));
      cs.next = static_cast<std::size_t>(driver_id * 8191 + connected_here);
      ++connected_here;
      sh.connected.fetch_add(1, std::memory_order_release);
    }
  } catch (const std::exception&) {
    sh.errors.fetch_add(1, std::memory_order_relaxed);
    for (int i = connected_here; i < nconns; ++i) {
      sh.connected.fetch_add(1, std::memory_order_release);  // free the latch
    }
  }
  wait_start(sh);
  std::uint64_t local_ops = 0;
  const auto submit_one = [&](ConnState& cs) {
    cs.cl->submit(rpc::WhatIfBatchRequest{{cands[cs.next % cands.size()]},
                                          /*verdict_only=*/true});
    cs.inflight.emplace_back(Clock::now(), cs.next % cands.size());
    ++cs.next;
  };
  const auto collect_one = [&](ConnState& cs) {
    const auto r = cs.cl->collect_as<rpc::WhatIfBatchResponse>();
    lat.push_back(ms_since(cs.inflight.front().first));
    if (r.results.size() != 1 ||
        r.results[0].admissible != expect[cs.inflight.front().second]) {
      sh.bad.fetch_add(1, std::memory_order_relaxed);
    }
    cs.inflight.pop_front();
  };
  for (auto& cs : conns) {
    if (!cs.cl) continue;
    try {
      for (int d = 0; d < kReaderDepth; ++d) submit_one(cs);
    } catch (const std::exception&) {
      sh.errors.fetch_add(1, std::memory_order_relaxed);
      cs.cl.reset();
    }
  }
  while (!sh.stop.load(std::memory_order_relaxed)) {
    bool any = false;
    for (auto& cs : conns) {
      if (!cs.cl) continue;
      any = true;
      try {
        collect_one(cs);
        ++local_ops;
        submit_one(cs);
      } catch (const std::exception&) {
        sh.errors.fetch_add(1, std::memory_order_relaxed);
        cs.cl.reset();
      }
      if (sh.stop.load(std::memory_order_relaxed)) break;
    }
    if (!any) break;
  }
  for (auto& cs : conns) {  // drain the tails (uncounted: past the clock)
    if (!cs.cl) continue;
    try {
      while (cs.cl->pending() > 0) collect_one(cs);
    } catch (const std::exception&) {
      sh.errors.fetch_add(1, std::memory_order_relaxed);
      cs.cl.reset();
    }
  }
  sh.ops.fetch_add(local_ops, std::memory_order_relaxed);
}

struct SectionResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool connected_all = false;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  const auto k = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<long>(k), v.end());
  return v[k];
}

/// Runs one client storm: `writers` writer connections + readers up to
/// `conns`, measured for `ms` milliseconds once every connection is up.
SectionResult run_storm(Storm& sh, int conns, int writers, int ms,
                        const std::vector<std::vector<gmf::Flow>>& wflows,
                        std::vector<std::vector<std::uint8_t>>& verdicts,
                        bool pipelined) {
  const int readers = conns - writers;
  const int nthreads = pipelined ? writers + kDrivers : conns;
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(nthreads));
  verdicts.assign(static_cast<std::size_t>(writers), {});
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nthreads));
  for (int w = 0; w < writers; ++w) {
    auto& mine = lat[static_cast<std::size_t>(w)];
    mine.reserve(4096);
    threads.emplace_back(writer_worker, std::ref(sh), std::ref(mine), w,
                         std::cref(wflows[static_cast<std::size_t>(w)]),
                         std::ref(verdicts[static_cast<std::size_t>(w)]),
                         pipelined);
  }
  if (pipelined) {
    // Readers multiplex over a handful of driver threads — pipelining
    // means a thread no longer has to block per connection.
    for (int d = 0; d < kDrivers; ++d) {
      const int share =
          readers / kDrivers + (d < readers % kDrivers ? 1 : 0);
      auto& mine = lat[static_cast<std::size_t>(writers + d)];
      mine.reserve(65536);
      threads.emplace_back(driver_worker, std::ref(sh), std::ref(mine), d,
                           share);
    }
  } else {
    // The PR 7 model: a synchronous client thread per connection.
    for (int i = 0; i < readers; ++i) {
      auto& mine = lat[static_cast<std::size_t>(writers + i)];
      mine.reserve(4096);
      threads.emplace_back(reader_worker, std::ref(sh), std::ref(mine),
                           writers + i, /*pipelined=*/false);
    }
  }
  const auto connect_t0 = Clock::now();
  while (sh.connected.load(std::memory_order_acquire) < conns &&
         ms_since(connect_t0) < 60'000.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  SectionResult out;
  out.connected_all =
      sh.connected.load(std::memory_order_acquire) == conns &&
      sh.errors.load(std::memory_order_relaxed) == 0;
  {
    std::lock_guard<std::mutex> lock(sh.start_mu);
    sh.started = true;
  }
  sh.start_cv.notify_all();
  const auto t0 = Clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  sh.stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const double secs = ms_since(t0) / 1000.0;
  out.qps = static_cast<double>(sh.ops.load()) / secs;
  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  out.p50_ms = percentile(all, 0.50);
  out.p99_ms = percentile(all, 0.99);
  return out;
}

/// Replays every writer's recorded admission sequence on a fresh mirror of
/// the base world.  Writer domains are pairwise disjoint, so any writer
/// order reproduces the daemon's verdicts and final world exactly.
/// Returns the mismatch count; the converged mirror is left in `mirror`.
int replay_on_mirror(engine::AnalysisEngine& mirror,
                     const std::vector<std::vector<gmf::Flow>>& wflows,
                     const std::vector<std::vector<std::uint8_t>>& verdicts) {
  int mismatches = 0;
  for (std::size_t w = 0; w < verdicts.size(); ++w) {
    for (std::size_t k = 0; k < verdicts[w].size(); ++k) {
      const bool admitted = mirror.try_admit(wflows[w][k]).has_value();
      if (admitted != (verdicts[w][k] != 0)) ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  int ms_per_point = 0;
  bool soak = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--soak") == 0) {
      soak = true;
    } else {
      ms_per_point = std::atoi(argv[i]);
    }
  }
  if (ms_per_point <= 0) ms_per_point = soak ? 300 : 1000;

  // 1000 connections x (client fd + daemon fd) + slack.
  rlimit nofile{};
  if (getrlimit(RLIMIT_NOFILE, &nofile) == 0 && nofile.rlim_cur < 8192) {
    nofile.rlim_cur = std::min<rlim_t>(8192, nofile.rlim_max);
    (void)setrlimit(RLIMIT_NOFILE, &nofile);
  }

  std::printf("=== rpc concurrency — epoll reactor vs thread-per-connection "
              "(%d ms/point%s) ===\n\n",
              ms_per_point, soak ? ", soak" : "");

  const Campus campus = make_campus(kCells);
  const std::vector<gmf::Flow> base = base_flows(campus);

  // Reader probe candidates on pairs 0-1 (the base pairs): their verdicts
  // never change because writers only ever touch pairs 2-3.
  std::vector<gmf::Flow> cands;
  std::vector<bool> expect;
  {
    const auto ref = make_engine(campus, base);
    const auto snap = ref->snapshot();
    const auto t0 = Clock::now();
    for (int j = 0; j < kProbeCands; ++j) {
      // Odd probes carry an unmeetable deadline: the expectation vector
      // gets a real admit/reject mix, so a response that answered the
      // wrong way cannot hide behind all-true expectations.
      cands.push_back(pair_call(campus, j % kCells, (j / kCells) % 2,
                                "probe" + std::to_string(j),
                                j % 2 == 1 ? kTightDeadline : Time::ms(20)));
      expect.push_back(snap->what_if(cands.back()).admissible);
    }
    const auto admissible =
        std::count(expect.begin(), expect.end(), true);
    std::printf("%d probe candidates (%lld admit / %lld reject), "
                "%.1f us/probe in-process\n\n",
                kProbeCands, static_cast<long long>(admissible),
                static_cast<long long>(kProbeCands - admissible),
                ms_since(t0) * 1000.0 / kProbeCands);
  }

  // One private (cell, pair) domain per writer on pairs 2-3.
  const int max_writers = kCells * 2;
  std::vector<std::vector<gmf::Flow>> wflows(
      static_cast<std::size_t>(max_writers));
  for (int w = 0; w < max_writers; ++w) {
    for (int k = 0; k < kWriterBudget; ++k) {
      // Every sixth admission is doomed (tight deadline): writer verdict
      // streams mix admits and rejects, and the mirror replay must
      // reproduce both.  Rejects leave no state behind, so determinism
      // per private domain is unaffected.
      wflows[static_cast<std::size_t>(w)].push_back(
          pair_call(campus, w % kCells, 2 + w / kCells,
                    "w" + std::to_string(w) + "f" + std::to_string(k),
                    k % 6 == 5 ? kTightDeadline : Time::ms(20)));
    }
  }

  Table t("RPC concurrency (mixed 10% writers / 90% readers)");
  t.set_columns({"section", "conns", "qps", "p50 ms", "p99 ms"});
  BenchJsonWriter json("rpc_concurrency");
  int failures = 0;
  double threaded_500_qps = 0.0;
  double reactor_500_qps = 0.0;
  std::uint64_t coalesced_500 = 0;

  const auto add_row = [&](const std::string& section, int conns,
                           const SectionResult& r) {
    t.add_row({section, std::to_string(conns), Table::fixed(r.qps, 0),
               Table::fixed(r.p50_ms, 2), Table::fixed(r.p99_ms, 2)});
    json.begin_row();
    json.add("section", section);
    json.add("connections", static_cast<double>(conns));
    json.add("qps", r.qps);
    json.add("p50_ms", r.p50_ms);
    json.add("p99_ms", r.p99_ms);
  };

  const auto check_world = [&](const char* section, std::uint64_t remote_flows,
                               engine::AnalysisEngine& mirror,
                               const std::vector<engine::WhatIfResult>& remote,
                               int replay_mismatches) {
    if (replay_mismatches != 0) {
      std::printf("FAIL(%s): %d admission verdicts disagreed with the mirror "
                  "replay\n", section, replay_mismatches);
      ++failures;
    }
    if (remote_flows != mirror.flow_count()) {
      std::printf("FAIL(%s): daemon holds %llu flows, mirror %zu\n", section,
                  static_cast<unsigned long long>(remote_flows),
                  mirror.flow_count());
      ++failures;
    }
    const auto snap = mirror.snapshot();
    int bad_final = 0;
    for (std::size_t k = 0; k < remote.size(); ++k) {
      if (remote[k].admissible != snap->what_if(cands[k]).admissible) {
        ++bad_final;
      }
    }
    if (bad_final != 0) {
      std::printf("FAIL(%s): %d final-world probes disagreed with the "
                  "mirror\n", section, bad_final);
      ++failures;
    }
  };

  const auto check_storm = [&](const char* section, const Storm& sh,
                               const SectionResult& r) {
    if (!r.connected_all || sh.errors.load() != 0) {
      std::printf("FAIL(%s): %d client transport errors (sustaining the "
                  "connection count is the point)\n", section,
                  sh.errors.load());
      ++failures;
    }
    if (sh.bad.load() != 0) {
      std::printf("FAIL(%s): %d probe verdicts disagreed with the "
                  "precomputed expectation\n", section, sh.bad.load());
      ++failures;
    }
  };

  // ------------------------------------------------- threaded baseline --
  if (!soak) {
    const int conns = 500;
    const int writers = conns / 10;
    auto eng = make_engine(campus, base);
    ThreadedServer srv(eng);
    srv.start();
    Storm sh;
    sh.port = srv.port();
    sh.cands = &cands;
    sh.expect = &expect;
    std::vector<std::vector<std::uint8_t>> verdicts;
    const SectionResult r = run_storm(sh, conns, writers, ms_per_point,
                                      wflows, verdicts, /*pipelined=*/false);
    srv.stop();
    add_row("threaded_500", conns, r);
    check_storm("threaded_500", sh, r);
    auto mirror = make_engine(campus, base);
    const int mism = replay_on_mirror(*mirror, wflows, verdicts);
    const auto snap = eng->snapshot();
    std::vector<engine::WhatIfResult> final_probes;
    for (const auto& c : cands) final_probes.push_back(snap->what_if(c));
    check_world("threaded_500", eng->flow_count(), *mirror, final_probes,
                mism);
    threaded_500_qps = r.qps;
  }

  // ------------------------------------------------------ reactor sections --
  const std::vector<int> conn_points = soak ? std::vector<int>{1000}
                                            : std::vector<int>{100, 500, 1000};
  for (const int conns : conn_points) {
    const int writers = std::min(conns / 10, max_writers);
    auto eng = make_engine(campus, base);
    rpc::ServerConfig scfg;
    scfg.max_connections = 1100;
    scfg.io_timeout_ms = 120'000;  // a TSan soak is slow, not stalled
    rpc::Server server(eng, scfg);
    std::thread daemon([&server] { server.serve(); });
    Storm sh;
    sh.port = server.tcp_port();
    sh.cands = &cands;
    sh.expect = &expect;
    std::vector<std::vector<std::uint8_t>> verdicts;
    const SectionResult r = run_storm(sh, conns, writers, ms_per_point,
                                      wflows, verdicts, /*pipelined=*/true);
    const std::string section = "reactor_" + std::to_string(conns);
    add_row(section, conns, r);
    check_storm(section.c_str(), sh, r);

    // Verify against the mirror over the live daemon, then wind it down.
    try {
      rpc::Client cl = connect_retry(server.tcp_port());
      const rpc::StatsResponse st = cl.stats();
      auto mirror = make_engine(campus, base);
      const int mism = replay_on_mirror(*mirror, wflows, verdicts);
      const std::vector<engine::WhatIfResult> final_probes =
          cl.what_if_batch(cands);
      check_world(section.c_str(), st.flows, *mirror, final_probes, mism);
      if (conns == 500) {
        reactor_500_qps = r.qps;
        coalesced_500 = st.coalesced_commits;
        json.add("vs_threaded",
                 threaded_500_qps > 0.0 ? r.qps / threaded_500_qps : 0.0);
        json.add("coalesced_commits", static_cast<double>(st.coalesced_commits));
      }
      std::printf("%s: frames=%llu coalesced=%llu pipelined_hwm=%llu "
                  "flows=%llu\n",
                  section.c_str(),
                  static_cast<unsigned long long>(st.frames_served),
                  static_cast<unsigned long long>(st.coalesced_commits),
                  static_cast<unsigned long long>(st.pipelined_hwm),
                  static_cast<unsigned long long>(st.flows));
      cl.shutdown();
    } catch (const std::exception& e) {
      std::printf("FAIL(%s): post-storm verification: %s\n", section.c_str(),
                  e.what());
      ++failures;
      server.request_stop();
    }
    daemon.join();
  }

  std::printf("\n");
  t.print();

  if (!soak) {
    if (!json.save()) {
      std::printf("\nFAIL: could not write %s\n", json.path().c_str());
      return 1;
    }
    std::printf("\nJSON written to %s\n", json.path().c_str());
    if (coalesced_500 == 0) {
      std::printf("FAIL: no coalesced commits at 500 connections — the "
                  "mutation worker never batched\n");
      ++failures;
    }
    if (reactor_500_qps < 3.0 * threaded_500_qps) {
      std::printf("FAIL: reactor_500 %.0f qps < 3x threaded_500 %.0f qps\n",
                  reactor_500_qps, threaded_500_qps);
      ++failures;
    } else {
      std::printf("reactor_500 / threaded_500 = %.2fx (gate: >= 3x)\n",
                  threaded_500_qps > 0.0 ? reactor_500_qps / threaded_500_qps
                                         : 0.0);
    }
  }

  if (failures != 0) {
    std::printf("FAIL: %d gate(s) failed\n", failures);
    return 1;
  }
  std::printf("PASS: every verdict matched the mirror; all sections "
              "sustained their connection count\n");
  return 0;
}
