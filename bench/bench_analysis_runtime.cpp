// Experiment E9: cost of the analysis itself (google-benchmark).
//
// The admission controller runs online, so its latency matters: we measure
// the demand-curve queries (eqs 10-13), a single per-hop analysis, a full
// Figure-6 pass, and the holistic fixed point as functions of flow count,
// GMF cycle length and hop count.
#include <benchmark/benchmark.h>

#include "core/admission.hpp"
#include "core/first_hop.hpp"
#include "core/holistic.hpp"
#include "core/priority.hpp"
#include "net/shortest_path.hpp"
#include "net/topology.hpp"
#include "workload/scenario.hpp"
#include "workload/taskset_gen.hpp"

using namespace gmfnet;

namespace {

workload::GeneratedTaskset make_taskset(const net::StarNetwork& star,
                                        int flows, int frames,
                                        std::uint64_t seed) {
  Rng rng(seed);
  workload::TasksetParams params;
  params.num_flows = flows;
  params.total_utilization = 0.4;
  params.min_frames = frames;
  params.max_frames = frames;
  params.deadline_factor_lo = 2.0;
  params.deadline_factor_hi = 4.0;
  auto ts = workload::generate_taskset(star.net, star.hosts, params, rng);
  if (!ts) std::abort();
  return *ts;
}

void BM_DemandCurveBuild(benchmark::State& state) {
  const auto frames = static_cast<int>(state.range(0));
  const auto star = net::make_star_network(4, 100'000'000);
  auto ts = make_taskset(star, 1, frames, 42);
  const gmf::FlowLinkParams params(ts.flows[0], 100'000'000);
  for (auto _ : state) {
    gmf::DemandCurve curve(params);
    benchmark::DoNotOptimize(curve);
  }
  state.SetComplexityN(frames);
}
BENCHMARK(BM_DemandCurveBuild)->RangeMultiplier(2)->Range(1, 64)
    ->Complexity(benchmark::oNSquared);

void BM_DemandCurveQuery(benchmark::State& state) {
  const auto star = net::make_star_network(4, 100'000'000);
  auto ts = make_taskset(star, 1, static_cast<int>(state.range(0)), 43);
  const gmf::FlowLinkParams params(ts.flows[0], 100'000'000);
  const gmf::DemandCurve curve(params);
  Time t = Time::us(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.mx(t));
    t += Time::us(313);
    if (t > Time::sec(1)) t = Time::us(17);
  }
}
BENCHMARK(BM_DemandCurveQuery)->RangeMultiplier(4)->Range(1, 64);

void BM_FirstHop(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  const auto star = net::make_star_network(4, 100'000'000);
  auto ts = make_taskset(star, flows, 4, 44);
  // Pack every flow onto the same source host to maximise interference.
  core::AnalysisContext ctx(star.net, ts.flows);
  const core::JitterMap jm = core::JitterMap::initial(ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::analyze_first_hop(ctx, jm, core::FlowId(0), 0));
  }
}
BENCHMARK(BM_FirstHop)->RangeMultiplier(2)->Range(2, 16);

void BM_Figure6SinglePass(benchmark::State& state) {
  const auto hops = static_cast<int>(state.range(0));
  const auto line = net::make_line_network(hops, 100'000'000);
  std::vector<gmf::Flow> flows = {workload::make_voip_flow(
      "v", *net::shortest_route(line.net, line.src_host, line.dst_host))};
  core::AnalysisContext ctx(line.net, flows);
  for (auto _ : state) {
    core::JitterMap jm = core::JitterMap::initial(ctx);
    benchmark::DoNotOptimize(
        core::analyze_frame_end_to_end(ctx, jm, core::FlowId(0), 0));
  }
  state.SetComplexityN(hops);
}
BENCHMARK(BM_Figure6SinglePass)->DenseRange(1, 8)->Complexity(benchmark::oN);

void BM_HolisticFixedPoint(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  const auto star = net::make_star_network(8, 100'000'000);
  auto ts = make_taskset(star, flows, 4, 45);
  core::assign_priorities(ts.flows,
                          core::PriorityScheme::kDeadlineMonotonic);
  core::AnalysisContext ctx(star.net, ts.flows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::analyze_holistic(ctx));
  }
  state.SetComplexityN(flows);
}
BENCHMARK(BM_HolisticFixedPoint)->RangeMultiplier(2)->Range(2, 32);

void BM_AdmissionDecision(benchmark::State& state) {
  // Cost of one online admission test at a realistic operating point.
  const auto s = workload::make_videoconf_scenario(100'000'000);
  for (auto _ : state) {
    core::AdmissionController ac(s.network);
    for (const auto& f : s.flows) {
      benchmark::DoNotOptimize(ac.try_admit(f));
    }
  }
}
BENCHMARK(BM_AdmissionDecision);

void BM_ContextConstruction(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  const auto star = net::make_star_network(8, 100'000'000);
  auto ts = make_taskset(star, flows, 8, 46);
  for (auto _ : state) {
    core::AnalysisContext ctx(star.net, ts.flows);
    benchmark::DoNotOptimize(ctx);
  }
}
BENCHMARK(BM_ContextConstruction)->RangeMultiplier(2)->Range(2, 32);

}  // namespace

BENCHMARK_MAIN();
