// Experiment E7: jitter propagation along the pipeline — end-to-end bound
// and accumulated generalized jitter vs. hop count.
//
// A VoIP flow crosses lines of 1..8 software switches; at every switch a
// leaf host injects competing traffic onto the shared forward link.  This
// isolates the paper's core structural mechanism: each stage's response
// becomes the next stage's generalized jitter (Figure 6 lines 10/15/19), so
// bounds grow superlinearly once windows start admitting extra arrivals.
#include <cstdio>
#include <string>
#include <vector>

#include "core/holistic.hpp"
#include "net/shortest_path.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace gmfnet;

int main() {
  std::printf("=== E7: response-time bound vs hop count ===\n\n");

  Table t("VoIP flow over a line of software switches (100 Mbit/s links)");
  t.set_columns({"switches", "stages", "bound (no cross)",
                 "bound (cross traffic)", "final-stage jitter (cross)"});
  CsvWriter csv({"switches", "stages", "bound_alone_ms", "bound_cross_ms",
                 "final_jitter_ms"});

  bool monotone = true;
  Time prev_cross = Time::zero();
  for (int hops = 1; hops <= 8; ++hops) {
    const auto line = net::make_line_network(hops, 100'000'000);
    net::Route main_route = *net::shortest_route(line.net, line.src_host,
                                                 line.dst_host);

    // Case A: lone flow.
    std::vector<gmf::Flow> alone = {
        workload::make_voip_flow("main", main_route, Time::ms(100), 1)};

    // Case B: at each switch, a leaf host sends a video-ish flow down the
    // remainder of the line (same priority class as voice to force
    // interference).
    std::vector<gmf::Flow> cross = alone;
    for (int i = 0; i < hops; ++i) {
      const auto leaf = line.leaf_hosts[static_cast<std::size_t>(i)];
      const auto r = net::shortest_route(line.net, leaf, line.dst_host);
      if (!r) continue;
      cross.push_back(gmf::make_sporadic_flow(
          "x" + std::to_string(i), *r, Time::ms(10), Time::ms(100),
          6'000 * 8, /*priority=*/1, /*jitter=*/Time::ms(1)));
    }

    core::AnalysisContext ctx_a(line.net, alone);
    core::AnalysisContext ctx_c(line.net, cross);
    const auto ra = core::analyze_holistic(ctx_a);
    const auto rc = core::analyze_holistic(ctx_c);
    if (!ra.converged || !rc.converged) {
      std::printf("divergence at %d switches (unexpected)\n", hops);
      return 1;
    }
    const Time ba = ra.worst_response(core::FlowId(0));
    const Time bc = rc.worst_response(core::FlowId(0));
    const auto& stages = ctx_c.stages(core::FlowId(0));
    const Time final_jitter =
        rc.jitters.max_jitter(core::FlowId(0), stages.back());

    monotone &= bc >= prev_cross && bc >= ba;
    prev_cross = bc;

    t.add_row({std::to_string(hops), std::to_string(stages.size()),
               ba.str(), bc.str(), final_jitter.str()});
    csv.begin_row();
    csv.add(hops);
    csv.add(stages.size() == 0 ? std::int64_t{0}
                               : static_cast<std::int64_t>(stages.size()));
    csv.add(ba.to_ms());
    csv.add(bc.to_ms());
    csv.add(final_jitter.to_ms());
  }
  t.print();
  csv.save("bench_jitter_propagation.csv");
  std::printf("\nbound monotone in hop count and load: %s\n",
              monotone ? "yes" : "NO (unexpected)");
  std::printf("CSV written to bench_jitter_propagation.csv\n");
  return monotone ? 0 : 1;
}
