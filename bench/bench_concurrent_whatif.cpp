// Concurrent what-if throughput and latency: N reader threads issuing
// admission probes against the engine's published snapshot
// (EngineSnapshot::what_if — the lock-free RCU read path), each reusing
// its own ProbeScratch so repeated probes skip the per-probe context
// assembly entirely.
//
// Topology: the 8-cell campus of bench_admission_scaling with 256 resident
// flows on rotating host pairs — many small locality domains, so probes
// spread across shards and the only shared state is the immutable
// snapshot.  Each reader loops over candidates in "its" cells; throughput
// is total completed probes / wall time, measured at 1/2/4/8 readers.
//
// Two sections:
//   readers_only   — a quiescent world, pure reader scaling;
//   mixed          — the same reader fleet while one writer thread churns
//                    admissions/removals and republishes, showing probes
//                    never block behind the writer.
//
//   $ ./bench_concurrent_whatif [ms_per_point]
//
// Emits BENCH_concurrent_whatif.json ({section, threads, hw_threads, qps,
// speedup, p50_us, p99_us}).  On machines with >= 8 hardware threads the
// bench exits non-zero unless readers_only throughput grows monotonically
// with reader count (5% tolerance) and the 8-reader point is >= 4x the
// single-reader point; with fewer cores the bars are reported but not
// enforced (they measure the hardware, not the code).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/campus_topology.hpp"
#include "engine/analysis_engine.hpp"
#include "net/network.hpp"
#include "util/bench_json.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace gmfnet;
using benchtopo::Campus;
using benchtopo::make_campus;
using benchtopo::voip_resident_flow;

namespace {

constexpr int kCells = 8;
constexpr int kResidents = 256;

double percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  const auto nth = static_cast<std::ptrdiff_t>(
      p * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(), samples.begin() + nth, samples.end());
  return samples[static_cast<std::size_t>(nth)];
}

struct Point {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  int bad = 0;
};

/// One measurement: `readers` threads probing `eng.published()` for
/// `ms_per_point` ms, each with its own ProbeScratch.  With `churn`, a
/// writer thread concurrently admits/removes probe-sized flows (and
/// republishes after every mutation); verdict checks are skipped in that
/// mode — the world the probe ran against is a moving target — and
/// correctness under churn is covered by tests/test_probe_scratch.cpp.
Point run_point(engine::AnalysisEngine& eng, const Campus& campus,
                const std::vector<gmf::Flow>& cands,
                const std::vector<bool>& expect, int readers,
                int ms_per_point, bool churn) {
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> done{0};
  std::atomic<int> bad{0};
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(readers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(readers));
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      engine::ProbeScratch scratch;  // reused across this reader's probes
      std::vector<double>& samples = lat[static_cast<std::size_t>(r)];
      samples.reserve(4096);
      std::size_t i = static_cast<std::size_t>(r) * 17;
      std::int64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t k = i++ % cands.size();
        const auto snap = eng.published();
        const auto p0 = std::chrono::steady_clock::now();
        const engine::WhatIfResult w = snap->what_if(cands[k], scratch);
        const auto p1 = std::chrono::steady_clock::now();
        samples.push_back(
            std::chrono::duration<double, std::micro>(p1 - p0).count());
        if (!churn && w.admissible != expect[k]) bad.fetch_add(1);
        ++local;
      }
      done.fetch_add(local, std::memory_order_relaxed);
    });
  }
  std::thread writer;
  if (churn) {
    writer = std::thread([&] {
      int n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (n % 2 == 0) {
          (void)eng.try_admit(
              voip_resident_flow(campus, kCells, 2 * kResidents + n));
        } else if (eng.flow_count() > static_cast<std::size_t>(kResidents)) {
          (void)eng.remove_flow(eng.flow_count() - 1);
          (void)eng.evaluate();
        }
        ++n;
      }
      // Restore the resident count so later sections see the same world.
      while (eng.flow_count() > static_cast<std::size_t>(kResidents)) {
        (void)eng.remove_flow(eng.flow_count() - 1);
      }
      (void)eng.evaluate();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms_per_point));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : threads) th.join();
  if (writer.joinable()) writer.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  Point out;
  out.qps = static_cast<double>(done.load()) / secs;
  std::vector<double> all;
  for (const auto& s : lat) all.insert(all.end(), s.begin(), s.end());
  out.p50_us = percentile(all, 0.50);
  out.p99_us = percentile(all, 0.99);
  out.bad = bad.load();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int ms_per_point = argc > 1 ? std::atoi(argv[1]) : 400;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("=== concurrent what-if throughput — lock-free snapshot "
              "probes (%d residents, %u hardware threads, %d ms/point) "
              "===\n\n",
              kResidents, hw, ms_per_point);

  const Campus campus = make_campus(kCells);
  engine::AnalysisEngine eng(campus.net);
  for (int n = 0; n < kResidents; ++n) {
    eng.add_flow(voip_resident_flow(campus, kCells, n));
  }
  const auto snap = eng.snapshot();
  std::printf("resident world: %zu flows in %zu locality domains\n\n",
              snap->flow_count(), snap->shard_count());

  // Reference verdicts so quiescent readers can sanity-check their probes.
  std::vector<gmf::Flow> cands;
  std::vector<bool> expect;
  for (int p = 0; p < 64; ++p) {
    cands.push_back(voip_resident_flow(campus, kCells, kResidents + p));
    expect.push_back(snap->what_if(cands.back()).admissible);
  }

  BenchJsonWriter json("concurrent_whatif");
  double qps1 = 0.0;
  std::vector<double> qps_points;
  bool fail = false;

  for (const bool churn : {false, true}) {
    const char* section = churn ? "mixed" : "readers_only";
    Table t(churn ? "What-if under writer churn (1 writer admitting/removing)"
                  : "What-if throughput vs reader threads (quiescent world)");
    t.set_columns(
        {"readers", "probes/s", "speedup vs 1", "p50 us", "p99 us"});
    for (const int readers : {1, 2, 4, 8}) {
      const Point pt = run_point(eng, campus, cands, expect, readers,
                                 ms_per_point, churn);
      if (!churn && readers == 1) qps1 = pt.qps;
      if (!churn) qps_points.push_back(pt.qps);
      // Both sections normalize against the quiescent single-reader point,
      // so the mixed rows read as "throughput retained under churn".
      const double speedup = pt.qps / qps1;
      t.add_row({std::to_string(readers), Table::fixed(pt.qps, 0),
                 Table::fixed(speedup, 2) + "x", Table::fixed(pt.p50_us, 1),
                 Table::fixed(pt.p99_us, 1)});
      json.begin_row();
      json.add("section", std::string(section));
      json.add("threads", readers);
      json.add("hw_threads", static_cast<int>(hw));
      json.add("qps", pt.qps);
      json.add("speedup", speedup);
      json.add("p50_us", pt.p50_us);
      json.add("p99_us", pt.p99_us);
      if (pt.bad != 0) {
        std::printf("FAIL: %d probes disagreed with the reference verdicts "
                    "(%s, %d readers)\n",
                    pt.bad, section, readers);
        fail = true;
      }
    }
    t.print();
    std::printf("\n");
  }
  if (fail) return 1;
  if (!json.save()) {
    std::printf("FAIL: could not write %s\n", json.path().c_str());
    return 1;
  }
  std::printf("JSON written to %s\n", json.path().c_str());

  bool monotonic = true;
  for (std::size_t k = 1; k < qps_points.size(); ++k) {
    monotonic &= qps_points[k] >= 0.95 * qps_points[k - 1];
  }
  const double at8 = qps_points.back() / qps_points.front();
  if (hw >= 8) {
    if (!monotonic || at8 < 4.0) {
      std::printf("FAIL: readers_only throughput must grow monotonically and "
                  "reach >= 4x at 8 readers (got %.2fx, monotonic=%s).\n",
                  at8, monotonic ? "yes" : "no");
      return 1;
    }
    std::printf("PASS: throughput monotonic, %.2fx at 8 readers.\n", at8);
  } else {
    std::printf("NOTE: %u hardware threads < 8 — scaling bars reported, not "
                "enforced (%.2fx at 8 readers, monotonic=%s).\n",
                hw, at8, monotonic ? "yes" : "no");
  }
  return 0;
}
