// Concurrent what-if throughput: N reader threads issuing admission probes
// against the engine's published snapshot (EngineSnapshot::what_if — the
// lock-free RCU read path) while the resident world stays warm.
//
// Topology: the 8-cell campus of bench_admission_scaling with 256 resident
// flows on rotating host pairs — many small locality domains, so probes
// spread across shards and the only shared state is the immutable
// snapshot.  Each reader loops over candidates in "its" cells; throughput
// is total completed probes / wall time, measured at 1/2/4/8 readers.
//
//   $ ./bench_concurrent_whatif [ms_per_point]
//
// Emits BENCH_concurrent_whatif.json ({threads, qps, speedup}).  On
// machines with >= 8 hardware threads the bench exits non-zero unless
// throughput grows monotonically with reader count (5% tolerance) and the
// 8-reader point is >= 4x the single-reader point; with fewer cores the
// bars are reported but not enforced (they measure the hardware, not the
// code).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/campus_topology.hpp"
#include "engine/analysis_engine.hpp"
#include "net/network.hpp"
#include "util/bench_json.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace gmfnet;
using benchtopo::Campus;
using benchtopo::make_campus;
using benchtopo::voip_resident_flow;

namespace {

constexpr int kCells = 8;
constexpr int kResidents = 256;

}  // namespace

int main(int argc, char** argv) {
  const int ms_per_point = argc > 1 ? std::atoi(argv[1]) : 400;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("=== concurrent what-if throughput — lock-free snapshot "
              "probes (%d residents, %u hardware threads, %d ms/point) "
              "===\n\n",
              kResidents, hw, ms_per_point);

  const Campus campus = make_campus(kCells);
  engine::AnalysisEngine eng(campus.net);
  for (int n = 0; n < kResidents; ++n) {
    eng.add_flow(voip_resident_flow(campus, kCells, n));
  }
  const auto snap = eng.snapshot();
  std::printf("resident world: %zu flows in %zu locality domains\n\n",
              snap->flow_count(), snap->shard_count());

  // Reference verdicts so readers can sanity-check their probes.
  std::vector<gmf::Flow> cands;
  std::vector<bool> expect;
  for (int p = 0; p < 64; ++p) {
    cands.push_back(voip_resident_flow(campus, kCells, kResidents + p));
    expect.push_back(snap->what_if(cands.back()).admissible);
  }

  Table t("What-if throughput vs reader threads");
  t.set_columns({"readers", "probes/s", "speedup vs 1"});
  BenchJsonWriter json("concurrent_whatif");

  double qps1 = 0.0;
  std::vector<double> qps_points;
  for (const int readers : {1, 2, 4, 8}) {
    std::atomic<bool> stop{false};
    std::atomic<std::int64_t> done{0};
    std::atomic<int> bad{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(readers));
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        std::size_t i = static_cast<std::size_t>(r) * 17;
        std::int64_t local = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::size_t k = i++ % cands.size();
          const engine::WhatIfResult w = snap->what_if(cands[k]);
          if (w.admissible != expect[k]) bad.fetch_add(1);
          ++local;
        }
        done.fetch_add(local, std::memory_order_relaxed);
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(ms_per_point));
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& th : threads) th.join();
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    const double qps = static_cast<double>(done.load()) / secs;
    if (readers == 1) qps1 = qps;
    qps_points.push_back(qps);
    const double speedup = qps / qps1;
    t.add_row({std::to_string(readers), Table::fixed(qps, 0),
               Table::fixed(speedup, 2) + "x"});
    json.begin_row();
    json.add("threads", readers);
    json.add("qps", qps);
    json.add("speedup", speedup);
    if (bad.load() != 0) {
      std::printf("FAIL: %d probes disagreed with the reference verdicts\n",
                  bad.load());
      return 1;
    }
  }
  t.print();
  if (!json.save()) {
    std::printf("\nFAIL: could not write %s\n", json.path().c_str());
    return 1;
  }
  std::printf("\nJSON written to %s\n", json.path().c_str());

  bool monotonic = true;
  for (std::size_t k = 1; k < qps_points.size(); ++k) {
    monotonic &= qps_points[k] >= 0.95 * qps_points[k - 1];
  }
  const double at8 = qps_points.back() / qps_points.front();
  if (hw >= 8) {
    if (!monotonic || at8 < 4.0) {
      std::printf("FAIL: throughput must grow monotonically and reach >= 4x "
                  "at 8 readers (got %.2fx, monotonic=%s).\n",
                  at8, monotonic ? "yes" : "no");
      return 1;
    }
    std::printf("PASS: throughput monotonic, %.2fx at 8 readers.\n", at8);
  } else {
    std::printf("NOTE: %u hardware threads < 8 — scaling bars reported, not "
                "enforced (%.2fx at 8 readers, monotonic=%s).\n",
                hw, at8, monotonic ? "yes" : "no");
  }
  return 0;
}
