// Demand-evaluation cost: merged LevelEnvelope + monotone cursor vs the
// naive per-interferer MX/NX path inside the per-hop busy-period and
// queueing recurrences (eqs 14-18 / 21-27 / 28-35), plus the DemandCurve
// construction microbench for the dedupe-before-sort build.
//
// Scenario: k interfering GMF flows sharing one first-hop link, one switch
// ingress and one egress link with the analysed flow — the per-hop loop
// then pays k demand lookups per fixed-point iteration on every stage.
// Both paths run the identical analysis (bit-identical results, asserted);
// only the demand evaluation strategy differs.
//
//   $ ./bench_demand_eval [reps]
//
// Exits non-zero if the envelope path is not >= 3x faster on hop analysis
// at 32+ interferers, or if the two paths ever disagree.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/end_to_end.hpp"
#include "core/holistic.hpp"
#include "gmf/demand.hpp"
#include "gmf/link_params.hpp"
#include "net/topology.hpp"
#include "util/bench_json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace gmfnet;

namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 1'000'000'000;

double wall_us(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

double median(std::vector<double> v) {
  std::nth_element(v.begin(),
                   v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2),
                   v.end());
  return v[v.size() / 2];
}

/// A 12-frame MPEG-like GMF cycle with varied separations and sizes: the
/// staircases get dozens of distinct spans, which is what makes the naive
/// per-iteration binary searches expensive.  `scale` multiplies payloads so
/// every interferer count runs the link at the same (high) utilization —
/// the regime where admission decisions are actually interesting and the
/// busy-period chains are long.
gmf::Flow video_flow(const std::string& name, net::Route route, Rng& rng) {
  std::vector<gmf::FrameSpec> frames(12);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    frames[f].min_separation = gmfnet::Time::us(rng.uniform_i64(5'000, 20'000));
    frames[f].deadline = gmfnet::Time::sec(2);
    frames[f].jitter = gmfnet::Time::us(rng.uniform_i64(0, 2'000));
    frames[f].payload_bits =
        (f == 0 ? 15'000 : rng.uniform_i64(2'000, 5'000)) * 8;
  }
  return gmf::Flow(name, std::move(route), std::move(frames), /*priority=*/3);
}

/// Reference pre-dedupe DemandCurve build: enumerate all n^2 windows, sort
/// them all, collapse to the staircase — what the constructor did before
/// the per-span dedupe.  Kept here (not in the library) purely as the
/// microbench baseline.
std::size_t reference_build(const gmf::FlowLinkParams& p) {
  struct Raw {
    gmfnet::Time::rep span, cost;
    std::int64_t count;
  };
  const std::size_t n = p.frame_count();
  std::vector<Raw> raw;
  raw.reserve(n * n);
  for (std::size_t k1 = 0; k1 < n; ++k1) {
    for (std::size_t k2 = 1; k2 <= n; ++k2) {
      raw.push_back(Raw{p.tsum_window(k1, k2).ps(), p.csum_window(k1, k2).ps(),
                        p.nsum_window(k1, k2)});
    }
  }
  std::sort(raw.begin(), raw.end(),
            [](const Raw& a, const Raw& b) { return a.span < b.span; });
  struct Step {
    gmfnet::Time::rep span, cost;
    std::int64_t count;
  };
  std::vector<Step> steps;
  gmfnet::Time::rep best_cost = 0;
  std::int64_t best_count = 0;
  for (const Raw& r : raw) {
    best_cost = std::max(best_cost, r.cost);
    best_count = std::max(best_count, r.count);
    if (!steps.empty() && steps.back().span == r.span) {
      steps.back().cost = best_cost;
      steps.back().count = best_count;
    } else {
      steps.push_back(Step{r.span, best_cost, best_count});
    }
  }
  return steps.size();
}

/// Constant-rate trace of `n` frames — the dedupe-friendly shape every
/// fixed-fps video source produces (only n distinct spans out of n^2).
gmf::Flow trace_flow(int n, net::Route route) {
  std::vector<gmf::FrameSpec> frames(static_cast<std::size_t>(n));
  for (std::size_t f = 0; f < frames.size(); ++f) {
    frames[f].min_separation = gmfnet::Time::ms(40);
    frames[f].deadline = gmfnet::Time::sec(2);
    frames[f].jitter = gmfnet::Time::zero();
    frames[f].payload_bits =
        (f % 12 == 0 ? 20'000 : 3'000 + static_cast<std::int64_t>(f % 7) * 500) * 8;
  }
  return gmf::Flow("trace" + std::to_string(n), std::move(route),
                   std::move(frames), /*priority=*/3);
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 64;
  std::printf(
      "=== Demand evaluation: merged envelope + cursor vs naive MX/NX "
      "(%d reps) ===\n\n", reps);

  BenchJsonWriter json("demand_eval");
  bool ok = true;

  // ---- hop analysis: naive vs envelope ------------------------------------
  Table t("Per-flow hop analysis (first hop + ingress + egress, median us)");
  t.set_columns({"interferers", "naive us", "envelope us", "speedup",
                 "identical"});

  double speedup_at_32 = 0.0;
  for (const int k : {8, 16, 32, 64}) {
    // ~2.85 Mbit/s per flow; pick the link speed so the shared link runs at
    // ~60% utilization for every interferer count — the near-capacity
    // regime admission control exists for, with realistically long
    // busy-period chains.
    const auto speed = static_cast<ethernet::LinkSpeedBps>(
        (k + 1) * 2.85e6 / 0.60);
    const auto star = net::make_star_network(2, speed);
    core::AnalysisContext ctx(star.net);
    Rng rng(0xbe7c + static_cast<std::uint64_t>(k));
    for (int f = 0; f < k + 1; ++f) {
      ctx.add_flow(video_flow("v" + std::to_string(f),
                              net::Route({star.hosts[0], star.sw,
                                          star.hosts[1]}),
                              rng));
    }

    // Steady state of the holistic iteration: converged jitters, so both
    // paths re-analyse against settled inputs (the shape every sweep after
    // the first, and every engine what-if probe, actually runs).
    core::HolisticOptions hopts;
    const core::HolisticResult base = core::analyze_holistic(ctx, hopts);
    if (!base.converged) {
      std::printf("FAIL: base scenario did not converge at k=%d\n", k);
      return 1;
    }

    const core::FlowId probe_flow(0);
    core::HopOptions naive_opts;
    naive_opts.use_envelope = false;
    core::HopOptions env_opts;  // default: envelope on

    bool identical = true;
    core::FlowResult naive_result, env_result;
    std::vector<double> naive_us, env_us;
    naive_us.reserve(static_cast<std::size_t>(reps));
    env_us.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
      core::JitterMap jm = base.jitters;
      naive_us.push_back(wall_us([&] {
        naive_result =
            core::analyze_flow_end_to_end(ctx, jm, probe_flow, naive_opts);
      }));
      core::JitterMap jm2 = base.jitters;
      env_us.push_back(wall_us([&] {
        env_result =
            core::analyze_flow_end_to_end(ctx, jm2, probe_flow, env_opts);
      }));
      identical &= naive_result.worst_response() == env_result.worst_response();
      for (std::size_t fr = 0; fr < naive_result.frames.size(); ++fr) {
        identical &= naive_result.frames[fr].response ==
                     env_result.frames[fr].response;
      }
    }
    const double nm = median(std::move(naive_us));
    const double em = median(std::move(env_us));
    const double speedup = nm / em;
    if (k == 32) speedup_at_32 = speedup;
    if (k >= 32 && speedup < 3.0) ok = false;
    if (!identical) ok = false;

    t.add_row({std::to_string(k), Table::fixed(nm, 1), Table::fixed(em, 1),
               Table::fixed(speedup, 2) + "x", identical ? "yes" : "NO"});
    json.begin_row();
    json.add("section", std::string("hop_analysis"));
    json.add("interferers", k);
    json.add("naive_us", nm);
    json.add("envelope_us", em);
    json.add("speedup", speedup);
    json.add("identical", identical);
  }
  t.print();
  std::printf("\n");

  // ---- DemandCurve construction: dedupe-before-sort -----------------------
  Table tc("DemandCurve construction (median us)");
  tc.set_columns({"frames", "windows", "steps", "presorted us", "dedup us",
                  "speedup"});
  const auto star = net::make_star_network(2, kSpeed);
  for (const int n : {12, 48, 96, 192}) {
    const gmf::Flow flow =
        trace_flow(n, net::Route({star.hosts[0], star.sw, star.hosts[1]}));
    const gmf::FlowLinkParams p(flow, kSpeed);

    std::size_t ref_steps = 0;
    std::size_t steps = 0;
    std::vector<double> ref_us, new_us;
    for (int r = 0; r < std::max(reps / 4, 4); ++r) {
      ref_us.push_back(wall_us([&] { ref_steps = reference_build(p); }));
      new_us.push_back(wall_us([&] {
        const gmf::DemandCurve d(p);
        steps = d.steps().size();
      }));
    }
    const double rm = median(std::move(ref_us));
    const double dm = median(std::move(new_us));
    tc.add_row({std::to_string(n), std::to_string(n * n),
                std::to_string(steps), Table::fixed(rm, 1),
                Table::fixed(dm, 1), Table::fixed(rm / dm, 2) + "x"});
    json.begin_row();
    json.add("section", std::string("construction"));
    json.add("frames", n);
    json.add("windows", n * n);
    json.add("ref_steps", static_cast<std::int64_t>(ref_steps));
    json.add("steps", static_cast<std::int64_t>(steps));
    json.add("presorted_us", rm);
    json.add("dedup_us", dm);
    json.add("speedup", rm / dm);
  }
  tc.print();

  if (json.save()) {
    std::printf("\nJSON written to %s\n", json.path().c_str());
  } else {
    std::printf("\nFAIL: could not write %s\n", json.path().c_str());
    return 1;
  }

  if (!ok) {
    std::printf(
        "FAIL: envelope hop analysis is not >= 3x faster at 32+ interferers "
        "(speedup@32 = %.2fx) or results diverged.\n", speedup_at_32);
    return 1;
  }
  std::printf(
      "PASS: envelope hop analysis >= 3x faster at 32+ interferers, "
      "bit-identical results.\n");
  return 0;
}
