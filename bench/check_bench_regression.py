#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json artifacts.

Usage: check_bench_regression.py <baseline_dir> <current_dir> [--tolerance=0.25]

Two kinds of gate:

 * Relative: the headline *ratio* metrics (speedups — machine-portable,
   unlike raw microseconds) of the current run are compared against the
   checked-in baselines under bench/baselines/; any metric regressing by
   more than the tolerance (default 25%) fails.  Raw-time metrics are
   deliberately not gated: CI runners differ in absolute speed, ratios of
   same-machine runs do not.

 * Absolute: a metric spec may carry a `min` floor the *current* value must
   clear regardless of what the baseline says (a baseline recorded on a
   weak machine must not grandfather a real regression in).  `min_if`
   restricts the floor to rows satisfying numeric preconditions — e.g. the
   8-reader scaling floor only applies on runners that actually have >= 8
   hardware threads (`hw_threads` is emitted per row by the bench).
   `min_slack` (a fraction, default 0) widens the floor for bars that sit
   exactly at the metric's true value: a "must be >= 1.0x" par-bar measured
   with a few percent of scheduler jitter needs a few percent of allowance,
   or the gate is a coin flip on a true pass.

Metric specs are either the legacy string form ("higher") or a dict:
    {"direction": "higher", "min": 4.0, "min_if": {"hw_threads": 8}}
`"relative": False` exempts a metric from the baseline comparison while
keeping its absolute floor — for raw-throughput metrics (qps) where only
the floor is machine-portable.

Every failing metric across every bench is reported in ONE run: failures
accumulate (including a bench whose artifact is unreadable — that is
recorded and the remaining benches still run) and the exit code reflects
the full list, so a red CI run shows the complete damage, not the first
casualty.

Row matching is by key fields (e.g. section + residents), so adding new rows
or benches never breaks the gate; removing a baselined row does (a silently
vanished data point is itself a regression).
"""

import json
import pathlib
import sys

# bench name -> {file, key fields, filter (subset row must match),
#                metrics: {name: spec}}
CHECKS = {
    "admission_scaling": {
        "file": "BENCH_admission_scaling.json",
        "key": ["section", "residents"],
        "filter": {},
        "metrics": {
            "speedup": "higher",
            # The sharded engine must not lose to the single-domain engine
            # on the four-domain world (the only section emitting this
            # ratio): materially under 1.0 means sharding costs more than
            # it saves.  The two paths are truly at par there (the
            # component solve dominates both), so the floor carries a 5%
            # measurement-noise allowance.
            "speedup_vs_mono": {
                "direction": "higher",
                "min": 1.0,
                "min_slack": 0.05,
            },
        },
    },
    "demand_eval": {
        "file": "BENCH_demand_eval.json",
        "key": ["section", "interferers"],
        "filter": {"section": "hop_analysis"},
        "metrics": {"speedup": "higher"},
    },
    "warm_boot": {
        "file": "BENCH_warm_boot.json",
        "key": ["section", "residents"],
        # The campus rows are informational (context rebuild dominates both
        # restart paths there); only the solve-heavy four_domain_av section
        # is a stable machine-portable ratio worth gating.
        "filter": {"section": "four_domain_av"},
        "metrics": {"speedup": "higher"},
    },
    "concurrent_whatif": {
        "file": "BENCH_concurrent_whatif.json",
        "key": ["section", "threads"],
        # The mixed (reader+writer) section measures writer pacing as much
        # as reader scaling; only the quiescent section is gated.
        "filter": {"section": "readers_only"},
        "metrics": {
            # Reader scaling vs the single-reader point.  The relative part
            # guards the curve's shape against the baseline; the absolute
            # floor (>= 4x at 8 readers) only binds on runners with >= 8
            # hardware threads — elsewhere the curve measures the machine.
            "speedup": {
                "direction": "higher",
                "min": 4.0,
                "min_if": {"threads": 8, "hw_threads": 8},
            },
        },
    },
    "holistic_convergence": {
        "file": "BENCH_holistic_convergence.json",
        "key": ["section", "separation_us", "m"],
        "filter": {"section": "near_critical_ring"},
        "metrics": {
            # Anderson vs plain Gauss-Seidel sweep counts on the
            # near-critical interference ring.  The absolute floor binds on
            # the headline rows — the slow ratchets where plain needs >=
            # 100 sweeps (separation 200us) and acceleration has real room:
            # there the accelerated solver must cut sweeps by >= 30%
            # (ratio 1/0.7 ~= 1.43).  Sweep counts are machine-independent,
            # so no noise allowance is needed; the milder 205/202us rows
            # are gated relatively against the baseline only.
            "sweep_ratio": {
                "direction": "higher",
                "min": 1.43,
                "min_if": {"plain_sweeps": 100},
            },
            # Acceleration must not cost wall clock where it wins sweeps.
            # Gated on the same slow rows (seconds-long solves, stable
            # timings) with a 10% scheduler-noise allowance.
            "wall_ratio": {
                "direction": "higher",
                "min": 1.0,
                "min_slack": 0.1,
                "min_if": {"plain_sweeps": 100},
            },
        },
    },
    # rpc_whatif is intentionally absent: loopback qps measures the socket
    # stack and scheduler, not this codebase; the bench fails itself on any
    # remote-vs-in-process verdict mismatch instead.
    "rpc_concurrency": {
        "file": "BENCH_rpc_concurrency.json",
        "key": ["section", "connections"],
        # Only the 500-connection reactor point is gated: the ISSUE's
        # headline number.  The 100/1000-connection rows and the threaded
        # baseline row are context.
        "filter": {"section": "reactor_500"},
        "metrics": {
            # Reactor vs thread-per-connection on the same machine in the
            # same run — the ratio that justifies the reactor rebuild.  The
            # bench itself fails under 3x; the floor here catches a
            # regressed artifact that slipped past a locally-edited gate.
            "vs_threaded": {"direction": "higher", "min": 3.0},
            # Absolute floor on sustained mixed-traffic qps at 500
            # connections.  Raw throughput is not machine-portable, so no
            # relative gate — but any runner this project targets must
            # clear 5k qps, an order of magnitude under the recorded
            # baseline and several times the old daemon's ceiling.
            "qps": {"direction": "higher", "min": 5000.0,
                    "relative": False},
        },
    },
}


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("rows", [])


def row_key(row, fields):
    return tuple(row.get(f) for f in fields)


def norm_spec(spec):
    """Legacy "higher" string -> dict form."""
    if isinstance(spec, str):
        return {"direction": spec}
    return spec


def min_if_holds(row, conditions):
    """Every condition key must be present and numerically >= its bound."""
    for field, bound in conditions.items():
        v = row.get(field)
        if v is None or float(v) < float(bound):
            return False
    return True


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__)
        return 2
    tolerance = 0.25
    for a in sys.argv[1:]:
        if a.startswith("--tolerance"):
            if "=" not in a:
                print("use --tolerance=<fraction>, e.g. --tolerance=0.25")
                return 2
            tolerance = float(a.split("=", 1)[1])
    baseline_dir, current_dir = map(pathlib.Path, args)

    failures = []
    checked = 0
    for bench, cfg in CHECKS.items():
        base_path = baseline_dir / cfg["file"]
        cur_path = current_dir / cfg["file"]
        metrics = {m: norm_spec(s) for m, s in cfg["metrics"].items()}
        if not cur_path.exists():
            if base_path.exists():
                failures.append(f"[{bench}] baseline exists but current run "
                                f"produced no {cur_path}")
            else:
                print(f"[{bench}] no current run at {cur_path} — skipping")
            continue
        # A truncated or malformed artifact fails THIS bench and moves on:
        # the report must cover every bench, not stop at the first casualty.
        try:
            cur_rows = load_rows(cur_path)
        except (OSError, ValueError) as e:
            failures.append(f"[{bench}] unreadable current artifact "
                            f"{cur_path}: {e}")
            continue

        # Relative gate: current vs baseline, row by baselined row.
        try:
            base_rows = load_rows(base_path) if base_path.exists() else None
        except (OSError, ValueError) as e:
            failures.append(f"[{bench}] unreadable baseline {base_path}: {e}")
            base_rows = None
        if base_rows is not None:
            current = {row_key(r, cfg["key"]): r for r in cur_rows}
            for row in base_rows:
                if any(row.get(k) != v for k, v in cfg["filter"].items()):
                    continue
                key = row_key(row, cfg["key"])
                cur = current.get(key)
                if cur is None:
                    failures.append(f"[{bench}] row {key} in baseline but "
                                    f"missing from current run")
                    continue
                for metric, spec in metrics.items():
                    if metric not in row:
                        continue
                    if not spec.get("relative", True):
                        continue
                    if metric not in cur:
                        # A baselined metric that vanished from the fresh
                        # run (renamed/dropped bench field) must fail the
                        # gate, not silently evade it: a data point nobody
                        # emits anymore can never regress.
                        failures.append(
                            f"[{bench}] {key} metric '{metric}' in baseline "
                            f"but missing from current run")
                        continue
                    base_v, cur_v = float(row[metric]), float(cur[metric])
                    checked += 1
                    if spec.get("direction") == "higher":
                        floor = base_v * (1.0 - tolerance)
                        ok = cur_v >= floor
                        verdict = "OK" if ok else "REGRESSED"
                        print(f"[{bench}] {key} {metric}: baseline "
                              f"{base_v:.2f} current {cur_v:.2f} "
                              f"(floor {floor:.2f}) {verdict}")
                        if not ok:
                            failures.append(
                                f"[{bench}] {key} {metric} regressed "
                                f">{tolerance:.0%}: "
                                f"{base_v:.2f} -> {cur_v:.2f}")
        else:
            print(f"[{bench}] no baseline at {base_path} — relative gate "
                  f"skipped (record one to start gating)")

        # Absolute gate: floors on the current run, baseline or not.
        for row in cur_rows:
            if any(row.get(k) != v for k, v in cfg["filter"].items()):
                continue
            key = row_key(row, cfg["key"])
            for metric, spec in metrics.items():
                if "min" not in spec or metric not in row:
                    continue
                if not min_if_holds(row, spec.get("min_if", {})):
                    continue
                cur_v = float(row[metric])
                floor = float(spec["min"]) * (
                    1.0 - float(spec.get("min_slack", 0.0)))
                checked += 1
                ok = cur_v >= floor
                verdict = "OK" if ok else "BELOW FLOOR"
                print(f"[{bench}] {key} {metric}: current {cur_v:.2f} "
                      f"(absolute floor {floor:.2f}) {verdict}")
                if not ok:
                    failures.append(
                        f"[{bench}] {key} {metric} below absolute floor: "
                        f"{cur_v:.2f} < {floor:.2f}")

    print(f"\n{checked} metrics checked, {len(failures)} failures")
    for f in failures:
        print("FAIL:", f)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
