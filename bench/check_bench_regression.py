#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json artifacts.

Usage: check_bench_regression.py <baseline_dir> <current_dir> [--tolerance=0.25]

Compares the headline *ratio* metrics (speedups — machine-portable, unlike
raw microseconds) of the current bench run against the checked-in baselines
under bench/baselines/, and exits non-zero when any metric regressed by more
than the tolerance (default 25%).  Raw-time metrics are deliberately not
gated: CI runners differ in absolute speed, ratios of same-machine runs do
not.

Row matching is by key fields (e.g. section + residents), so adding new rows
or benches never breaks the gate; removing a baselined row does (a silently
vanished data point is itself a regression).
"""

import json
import pathlib
import sys

# bench name -> {file, key fields, filter (subset row must match),
#                metrics: {name: direction}}
CHECKS = {
    "admission_scaling": {
        "file": "BENCH_admission_scaling.json",
        "key": ["section", "residents"],
        "filter": {},
        "metrics": {"speedup": "higher"},
    },
    "demand_eval": {
        "file": "BENCH_demand_eval.json",
        "key": ["section", "interferers"],
        "filter": {"section": "hop_analysis"},
        "metrics": {"speedup": "higher"},
    },
    "warm_boot": {
        "file": "BENCH_warm_boot.json",
        "key": ["section", "residents"],
        # The campus rows are informational (context rebuild dominates both
        # restart paths there); only the solve-heavy four_domain_av section
        # is a stable machine-portable ratio worth gating.
        "filter": {"section": "four_domain_av"},
        "metrics": {"speedup": "higher"},
    },
    # concurrent_whatif is intentionally absent: its scaling curve measures
    # the runner's core count, not the code; the bench gates itself on
    # machines with >= 8 hardware threads.
    # rpc_whatif is intentionally absent too: loopback qps measures the
    # socket stack and scheduler, not this codebase; the bench fails itself
    # on any remote-vs-in-process verdict mismatch instead.
}


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("rows", [])


def row_key(row, fields):
    return tuple(row.get(f) for f in fields)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__)
        return 2
    tolerance = 0.25
    for a in sys.argv[1:]:
        if a.startswith("--tolerance"):
            if "=" not in a:
                print("use --tolerance=<fraction>, e.g. --tolerance=0.25")
                return 2
            tolerance = float(a.split("=", 1)[1])
    baseline_dir, current_dir = map(pathlib.Path, args)

    failures = []
    checked = 0
    for bench, cfg in CHECKS.items():
        base_path = baseline_dir / cfg["file"]
        cur_path = current_dir / cfg["file"]
        if not base_path.exists():
            print(f"[{bench}] no baseline at {base_path} — skipping "
                  f"(record one to start gating)")
            continue
        if not cur_path.exists():
            failures.append(f"[{bench}] baseline exists but current run "
                            f"produced no {cur_path}")
            continue
        current = {}
        for row in load_rows(cur_path):
            current[row_key(row, cfg["key"])] = row
        for row in load_rows(base_path):
            if any(row.get(k) != v for k, v in cfg["filter"].items()):
                continue
            key = row_key(row, cfg["key"])
            cur = current.get(key)
            if cur is None:
                failures.append(f"[{bench}] row {key} in baseline but "
                                f"missing from current run")
                continue
            for metric, direction in cfg["metrics"].items():
                if metric not in row:
                    continue
                if metric not in cur:
                    # A baselined metric that vanished from the fresh run
                    # (renamed/dropped bench field) must fail the gate, not
                    # silently evade it: a data point nobody emits anymore
                    # can never regress.
                    failures.append(f"[{bench}] {key} metric '{metric}' in "
                                    f"baseline but missing from current run")
                    continue
                base_v, cur_v = float(row[metric]), float(cur[metric])
                checked += 1
                if direction == "higher":
                    floor = base_v * (1.0 - tolerance)
                    ok = cur_v >= floor
                    verdict = "OK" if ok else "REGRESSED"
                    print(f"[{bench}] {key} {metric}: baseline {base_v:.2f} "
                          f"current {cur_v:.2f} (floor {floor:.2f}) "
                          f"{verdict}")
                    if not ok:
                        failures.append(
                            f"[{bench}] {key} {metric} regressed "
                            f">{tolerance:.0%}: {base_v:.2f} -> {cur_v:.2f}")
    print(f"\n{checked} metrics checked, {len(failures)} failures")
    for f in failures:
        print("FAIL:", f)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
