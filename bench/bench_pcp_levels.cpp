// Experiment E11: how many 802.1p hardware priority levels does the
// analysis need?
//
// §1 of the paper notes that commodity switches "support 2-8 priority
// levels".  Deadline-monotonic assignment produces one class per flow;
// hardware collapses them to 2..8 PCP classes.  This bench measures the
// acceptance ratio of the holistic analysis as a function of available
// levels (plus the unconstrained ideal), quantifying what the 802.1p
// constraint costs.
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "core/holistic.hpp"
#include "core/priority.hpp"
#include "net/topology.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/taskset_gen.hpp"

using namespace gmfnet;

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 40;
  const std::vector<double> levels_util = {0.5, 0.7, 0.85};
  const std::vector<int> pcp_levels = {2, 3, 4, 8};

  std::printf("=== E11: acceptance ratio vs number of 802.1p priority "
              "levels (%d task sets per cell, 12 flows) ===\n\n",
              trials);

  const auto star = net::make_star_network(8, 100'000'000);

  // accept[u][l]: acceptance count at utilization u with pcp_levels[l]
  // classes; last column = unconstrained deadline-monotonic.
  std::vector<std::vector<std::atomic<int>>> accept(levels_util.size());
  for (auto& row : accept) {
    row = std::vector<std::atomic<int>>(pcp_levels.size() + 1);
  }
  std::vector<std::atomic<int>> totals(levels_util.size());

  ThreadPool pool;
  pool.parallel_for(
      levels_util.size() * static_cast<std::size_t>(trials),
      [&](std::size_t job) {
        const std::size_t ui = job / static_cast<std::size_t>(trials);
        Rng rng(0x13e7e15 + job * 131);
        workload::TasksetParams params;
        params.num_flows = 12;
        params.total_utilization = levels_util[ui];
        params.size_spread = 0.9;
        params.deadline_factor_lo = 0.5;
        params.deadline_factor_hi = 2.0;
        auto ts =
            workload::generate_taskset(star.net, star.hosts, params, rng);
        if (!ts) return;
        core::assign_priorities(ts->flows,
                                core::PriorityScheme::kDeadlineMonotonic);
        totals[ui].fetch_add(1);

        {  // unconstrained
          core::AnalysisContext ctx(star.net, ts->flows);
          if (core::analyze_holistic(ctx).schedulable) {
            accept[ui][pcp_levels.size()].fetch_add(1);
          }
        }
        for (std::size_t li = 0; li < pcp_levels.size(); ++li) {
          auto flows = ts->flows;
          core::apply_pcp_levels(flows, pcp_levels[li]);
          core::AnalysisContext ctx(star.net, flows);
          if (core::analyze_holistic(ctx).schedulable) {
            accept[ui][li].fetch_add(1);
          }
        }
      });

  Table t("Acceptance ratio by available priority levels");
  std::vector<std::string> cols = {"utilization"};
  for (int l : pcp_levels) cols.push_back(std::to_string(l) + " levels");
  cols.push_back("unconstrained");
  t.set_columns(cols);
  CsvWriter csv({"utilization", "levels", "acceptance"});

  bool monotone = true;
  for (std::size_t ui = 0; ui < levels_util.size(); ++ui) {
    const double n = std::max(1, totals[ui].load());
    std::vector<std::string> row = {Table::fixed(levels_util[ui], 2)};
    double prev = -1;
    for (std::size_t li = 0; li <= pcp_levels.size(); ++li) {
      const double a = accept[ui][li].load() / n;
      row.push_back(Table::fixed(a, 3));
      // More levels can merge fewer classes: acceptance should be
      // non-decreasing in the level count (up to sampling noise; we check
      // the exact counts, which are monotone per task set in theory but
      // not guaranteed -- report only).
      if (a + 1e-9 < prev) monotone = false;
      prev = a;
      csv.begin_row();
      csv.add(levels_util[ui]);
      csv.add(li < pcp_levels.size() ? pcp_levels[li] : 99);
      csv.add(a);
    }
    t.add_row(row);
  }
  t.print();
  csv.save("bench_pcp_levels.csv");
  std::printf("\nacceptance non-decreasing in level count: %s\n",
              monotone ? "yes" : "no (class-merge anomalies present)");
  std::printf("CSV written to bench_pcp_levels.csv\n");
  return 0;
}
