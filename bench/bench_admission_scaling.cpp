// Experiment E10: admission-decision cost as the resident flow set grows —
// the seed's from-scratch controller (rebuild AnalysisContext + cold
// holistic fixed point per query) vs the incremental sharded AnalysisEngine
// (per-domain contexts, route-based dirty tracking, warm-started fixed
// point, published snapshots).
//
// Two scenarios:
//
//  * "campus": independent star cells (one switch + 8 phones each), flows
//    on rotating host pairs — many small locality domains, the shape an
//    operator's admission controller actually serves.  From-scratch cost
//    grows with the total resident count; sharded cost only with the
//    touched domain.
//
//  * "four_domain": 4 cells whose flows all fan out of one hub host, so
//    the engine discovers exactly 4 locality domains of 64 flows each at
//    256 residents.  Domains this large are the hard case for incremental
//    admission (the touched component is a quarter of the world), which is
//    what the >= 3x single-admission bar is measured on.  The
//    single-domain engine (shard_by_domain = false, the pre-shard
//    architecture) is timed alongside to isolate what the per-shard
//    context buys on top of warm incremental re-analysis.
//
//   $ ./bench_admission_scaling [probes_per_size]
//
// Exits non-zero if sharded admission is not >= 5x faster than
// from-scratch at 64+ campus residents, not >= 3x faster than from-scratch
// on the 4-domain 256-resident scenario, or if any two paths disagree on a
// verdict.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench/campus_topology.hpp"
#include "core/holistic.hpp"
#include "engine/analysis_engine.hpp"
#include "net/network.hpp"
#include "util/bench_json.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace gmfnet;
using benchtopo::Campus;
using benchtopo::hub_flow;
using benchtopo::make_campus;
using benchtopo::resident_flow;

namespace {

constexpr int kCells = 8;

double wall_us(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

double median(std::vector<double> v) {
  std::nth_element(v.begin(),
                   v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2),
                   v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const int probes = std::max(1, argc > 1 ? std::atoi(argv[1]) : 32);
  std::printf("=== E10: admission cost scaling — from-scratch vs sharded "
              "engine (%d-cell campus, %d probes per size) ===\n\n",
              kCells, probes);

  const Campus campus = make_campus(kCells);

  Table t("Per-admission decision cost (median over probes)");
  t.set_columns({"resident flows", "from-scratch us", "sharded us", "speedup",
                 "verdicts agree"});
  CsvWriter csv({"section", "residents", "scratch_us", "incremental_us",
                 "speedup"});
  BenchJsonWriter json("admission_scaling");

  bool bar_met = true;
  bool verdicts_agree = true;
  for (const int residents : {8, 16, 32, 64, 128, 256}) {
    std::vector<gmf::Flow> flows;
    flows.reserve(static_cast<std::size_t>(residents));
    for (int n = 0; n < residents; ++n) {
      flows.push_back(resident_flow(campus, kCells, n));
    }

    // The sharded engine carries its converged state between arrivals.
    engine::AnalysisEngine eng(campus.net);
    for (const gmf::Flow& f : flows) eng.add_flow(f);
    (void)eng.evaluate();  // settle the warm cache (not timed)

    // Median over probes: robust against scheduler spikes on busy hosts.
    std::vector<double> scratch_samples, incremental_samples;
    scratch_samples.reserve(static_cast<std::size_t>(probes));
    incremental_samples.reserve(static_cast<std::size_t>(probes));
    bool size_agree = true;
    for (int p = 0; p < probes; ++p) {
      const gmf::Flow cand = resident_flow(campus, kCells, residents + p);

      // Seed behaviour: rebuild the world, iterate from cold.
      core::HolisticResult cold;
      scratch_samples.push_back(wall_us([&] {
        std::vector<gmf::Flow> candidate_set = flows;
        candidate_set.push_back(cand);
        const core::AnalysisContext ctx(campus.net, candidate_set);
        cold = core::analyze_holistic(ctx);
      }));

      // Engine behaviour: copy of the touched shard only, dirty component
      // only, warm start from the published fixed point.
      engine::WhatIfResult warm;
      incremental_samples.push_back(wall_us([&] { warm = eng.what_if(cand); }));

      size_agree &= warm.admissible == cold.schedulable;
      size_agree &=
          warm.worst_response(
              core::FlowId(static_cast<std::int32_t>(residents))) ==
          cold.worst_response(
              core::FlowId(static_cast<std::int32_t>(residents)));
    }
    verdicts_agree &= size_agree;
    const double scratch_us = median(std::move(scratch_samples));
    const double incremental_us = median(std::move(incremental_samples));
    const double speedup = scratch_us / incremental_us;
    if (residents >= 64 && speedup < 5.0) bar_met = false;

    t.add_row({std::to_string(residents), Table::fixed(scratch_us, 1),
               Table::fixed(incremental_us, 1), Table::fixed(speedup, 1) + "x",
               size_agree ? "yes" : "NO"});
    csv.begin_row();
    csv.add(std::string("campus"));
    csv.add(residents);
    csv.add(scratch_us);
    csv.add(incremental_us);
    csv.add(speedup);
    json.begin_row();
    json.add("section", std::string("campus"));
    json.add("residents", residents);
    json.add("scratch_us", scratch_us);
    json.add("incremental_us", incremental_us);
    json.add("speedup", speedup);
    json.add("verdicts_agree", size_agree);
  }
  t.print();

  // --- four_domain: 4 hub cells, 64-flow locality domains at 256 flows ---
  std::printf("\n=== four_domain: 4 locality domains x 64 residents — "
              "the large-domain hard case ===\n\n");
  constexpr int kFourCells = 4;
  constexpr int kFourResidents = 256;
  const Campus hub = make_campus(kFourCells);
  std::vector<gmf::Flow> hub_flows;
  for (int n = 0; n < kFourResidents; ++n) {
    hub_flows.push_back(hub_flow(hub, kFourCells, n));
  }
  engine::AnalysisEngine sharded(hub.net);
  engine::AnalysisEngine mono(hub.net, {}, /*shard_by_domain=*/false);
  for (const gmf::Flow& f : hub_flows) {
    sharded.add_flow(f);
    mono.add_flow(f);
  }
  (void)sharded.evaluate();
  (void)mono.evaluate();
  std::printf("engine discovered %zu locality domains\n",
              sharded.shard_count());

  // Untimed warm-up: the first probe against each locality domain builds
  // the engine's writer scratch entry (mono has one domain, sharded four);
  // timing those builds would charge the sharded path 4x the one-off setup.
  for (int p = 0; p < kFourCells; ++p) {
    const gmf::Flow warm = hub_flow(hub, kFourCells, kFourResidents + p);
    (void)mono.what_if(warm);
    (void)sharded.what_if(warm);
  }

  std::vector<double> fs_s, mono_s, shard_s;
  bool hub_agree = true;
  const int fs_probes = std::min(probes, 8);  // from-scratch is slow here
  for (int p = 0; p < probes; ++p) {
    const gmf::Flow cand = hub_flow(hub, kFourCells, kFourResidents + p);
    core::HolisticResult cold;
    if (p < fs_probes) {
      fs_s.push_back(wall_us([&] {
        std::vector<gmf::Flow> candidate_set = hub_flows;
        candidate_set.push_back(cand);
        const core::AnalysisContext ctx(hub.net, candidate_set);
        cold = core::analyze_holistic(ctx);
      }));
    }
    engine::WhatIfResult wm, ws;
    mono_s.push_back(wall_us([&] { wm = mono.what_if(cand); }));
    shard_s.push_back(wall_us([&] { ws = sharded.what_if(cand); }));
    hub_agree &= wm.admissible == ws.admissible;
    if (p < fs_probes) hub_agree &= ws.admissible == cold.schedulable;
  }
  verdicts_agree &= hub_agree;
  const double fs_us = median(fs_s);
  const double mono_us = median(mono_s);
  const double shard_us = median(shard_s);
  const double hub_speedup = fs_us / shard_us;
  // The two engine paths are within a few percent of each other here (the
  // 65-flow component solve dominates both), so the gated ratio uses each
  // path's best-case sample — the standard low-noise estimator of a
  // deterministic cost — rather than medians, whose scheduler jitter would
  // swamp a ~1.0 ratio.
  const double vs_mono =
      *std::min_element(mono_s.begin(), mono_s.end()) /
      *std::min_element(shard_s.begin(), shard_s.end());
  const bool hub_bar = hub_speedup >= 3.0;
  bar_met &= hub_bar;

  Table t4("4-domain 256-resident single-admission cost (median)");
  t4.set_columns({"path", "us", "speedup vs from-scratch"});
  t4.add_row({"from-scratch", Table::fixed(fs_us, 1), "1.0x"});
  t4.add_row({"single-domain engine", Table::fixed(mono_us, 1),
              Table::fixed(fs_us / mono_us, 1) + "x"});
  t4.add_row({"sharded engine", Table::fixed(shard_us, 1),
              Table::fixed(hub_speedup, 1) + "x"});
  t4.print();
  std::printf("sharded vs single-domain engine: %.2fx — on domains this "
              "large the 65-flow component solve dominates both paths "
              "(expect ~1.0x within noise); the touched-shard copy/closure "
              "win shows in the many-small-domains campus table above\n",
              vs_mono);
  csv.begin_row();
  csv.add(std::string("four_domain"));
  csv.add(kFourResidents);
  csv.add(fs_us);
  csv.add(shard_us);
  csv.add(hub_speedup);
  json.begin_row();
  json.add("section", std::string("four_domain"));
  json.add("residents", kFourResidents);
  json.add("scratch_us", fs_us);
  json.add("incremental_us", shard_us);
  json.add("mono_us", mono_us);
  json.add("speedup", hub_speedup);
  json.add("speedup_vs_mono", vs_mono);
  json.add("verdicts_agree", hub_agree);

  csv.save("bench_admission_scaling.csv");
  if (json.save()) {
    std::printf("\nCSV written to bench_admission_scaling.csv, JSON to %s\n",
                json.path().c_str());
  } else {
    std::printf("\nFAIL: could not write %s\n", json.path().c_str());
    return 1;
  }

  if (!verdicts_agree) {
    std::printf("FAIL: engine and from-scratch verdicts disagree.\n");
    return 1;
  }
  if (!bar_met) {
    std::printf("FAIL: speedup bars missed (need >= 5x at 64+ campus "
                "residents, >= 3x on 4-domain 256).\n");
    return 1;
  }
  std::printf("PASS: sharded admission >= 5x faster at 64+ campus residents, "
              ">= 3x on the 4-domain 256-resident scenario, verdicts "
              "identical.\n");
  return 0;
}
