// Experiment E10: admission-decision cost as the resident flow set grows —
// the seed's from-scratch controller (rebuild AnalysisContext + cold
// holistic fixed point per query) vs the incremental AnalysisEngine
// (cached parameter caches, route-based dirty tracking, warm-started fixed
// point).
//
// Topology: a "campus" of independent star cells (one switch + 8 phones
// each), the shape an operator's admission controller actually serves —
// arrivals touch one locality domain, not the whole campus.  From-scratch
// cost grows with the total resident count; incremental cost grows only
// with the touched component.
//
//   $ ./bench_admission_scaling [probes_per_size]
//
// Exits non-zero if incremental admission is not >= 5x faster than
// from-scratch at 64+ resident flows (the acceptance bar), or if the two
// paths ever disagree on a verdict.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/holistic.hpp"
#include "engine/analysis_engine.hpp"
#include "net/network.hpp"
#include "util/bench_json.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace gmfnet;

namespace {

constexpr int kCells = 8;
constexpr int kHostsPerCell = 8;
constexpr ethernet::LinkSpeedBps kSpeed = 100'000'000;

struct Campus {
  net::Network net;
  // hosts[cell][i]
  std::vector<std::vector<net::NodeId>> hosts;
  std::vector<net::NodeId> switches;
};

Campus make_campus() {
  Campus c;
  for (int cell = 0; cell < kCells; ++cell) {
    const net::NodeId sw = c.net.add_switch("sw" + std::to_string(cell));
    c.switches.push_back(sw);
    c.hosts.emplace_back();
    for (int h = 0; h < kHostsPerCell; ++h) {
      const net::NodeId host = c.net.add_endhost(
          "c" + std::to_string(cell) + "h" + std::to_string(h));
      c.net.add_duplex_link(host, sw, kSpeed);
      c.hosts.back().push_back(host);
    }
  }
  return c;
}

/// Resident flow n in cell (n % kCells) between a rotating host pair of
/// that cell: alternately a VoIP call and a surveillance-camera feed (a
/// 4-frame GMF cycle: one 20 kB I-frame then three 3 kB P-frames at 25 fps
/// — the paper's multimedia workload shape, much heavier to analyse than a
/// sporadic call).
gmf::Flow resident_flow(const Campus& c, int n) {
  const int cell = n % kCells;
  const int pair = (n / kCells) % (kHostsPerCell / 2);
  const auto a = static_cast<std::size_t>(2 * pair);
  const auto b = a + 1;
  net::Route route({c.hosts[static_cast<std::size_t>(cell)][a],
                    c.switches[static_cast<std::size_t>(cell)],
                    c.hosts[static_cast<std::size_t>(cell)][b]});
  if (n % 2 == 0) {
    return workload::make_voip_flow("call" + std::to_string(n),
                                    std::move(route), gmfnet::Time::ms(20),
                                    /*priority=*/5);
  }
  std::vector<gmf::FrameSpec> frames;
  for (int k = 0; k < 4; ++k) {
    gmf::FrameSpec fs;
    fs.min_separation = gmfnet::Time::ms(40);
    fs.deadline = gmfnet::Time::ms(100);
    fs.jitter = gmfnet::Time::ms(1);
    fs.payload_bits = (k == 0 ? 20000 : 3000) * 8;
    frames.push_back(fs);
  }
  return gmf::Flow("cam" + std::to_string(n), std::move(route),
                   std::move(frames), /*priority=*/1);
}

double wall_us(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const int probes = argc > 1 ? std::atoi(argv[1]) : 32;
  std::printf("=== E10: admission cost scaling — from-scratch vs incremental "
              "(%d-cell campus, %d probes per size) ===\n\n",
              kCells, probes);

  const Campus campus = make_campus();

  Table t("Per-admission decision cost (median over probes)");
  t.set_columns({"resident flows", "from-scratch us", "incremental us",
                 "speedup", "verdicts agree"});
  CsvWriter csv({"residents", "scratch_us", "incremental_us", "speedup"});
  BenchJsonWriter json("admission_scaling");

  bool bar_met = true;
  bool verdicts_agree = true;
  for (const int residents : {8, 16, 32, 64, 128, 256}) {
    std::vector<gmf::Flow> flows;
    flows.reserve(static_cast<std::size_t>(residents));
    for (int n = 0; n < residents; ++n) {
      flows.push_back(resident_flow(campus, n));
    }

    // The incremental engine carries its converged state between arrivals.
    engine::AnalysisEngine eng(campus.net);
    for (const gmf::Flow& f : flows) eng.add_flow(f);
    (void)eng.evaluate();  // settle the warm cache (not timed)

    // Median over probes: robust against scheduler spikes on busy hosts.
    std::vector<double> scratch_samples, incremental_samples;
    scratch_samples.reserve(static_cast<std::size_t>(probes));
    incremental_samples.reserve(static_cast<std::size_t>(probes));
    bool size_agree = true;
    for (int p = 0; p < probes; ++p) {
      const gmf::Flow cand = resident_flow(campus, residents + p);

      // Seed behaviour: rebuild the world, iterate from cold.
      core::HolisticResult cold;
      scratch_samples.push_back(wall_us([&] {
        std::vector<gmf::Flow> candidate_set = flows;
        candidate_set.push_back(cand);
        const core::AnalysisContext ctx(campus.net, candidate_set);
        cold = core::analyze_holistic(ctx);
      }));

      // Engine behaviour: copy-on-write view, dirty component only, warm
      // start from the cached fixed point.
      engine::WhatIfResult warm;
      incremental_samples.push_back(wall_us([&] { warm = eng.what_if(cand); }));

      size_agree &= warm.admissible == cold.schedulable;
      size_agree &=
          warm.result.worst_response(
              core::FlowId(static_cast<std::int32_t>(residents))) ==
          cold.worst_response(
              core::FlowId(static_cast<std::int32_t>(residents)));
    }
    verdicts_agree &= size_agree;
    const auto median = [](std::vector<double> v) {
      std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2), v.end());
      return v[v.size() / 2];
    };
    const double scratch_us = median(std::move(scratch_samples));
    const double incremental_us = median(std::move(incremental_samples));
    const double speedup = scratch_us / incremental_us;
    if (residents >= 64 && speedup < 5.0) bar_met = false;

    t.add_row({std::to_string(residents), Table::fixed(scratch_us, 1),
               Table::fixed(incremental_us, 1), Table::fixed(speedup, 1) + "x",
               size_agree ? "yes" : "NO"});
    csv.begin_row();
    csv.add(residents);
    csv.add(scratch_us);
    csv.add(incremental_us);
    csv.add(speedup);
    json.begin_row();
    json.add("residents", residents);
    json.add("scratch_us", scratch_us);
    json.add("incremental_us", incremental_us);
    json.add("speedup", speedup);
    json.add("verdicts_agree", size_agree);
  }
  t.print();
  csv.save("bench_admission_scaling.csv");
  if (json.save()) {
    std::printf("\nCSV written to bench_admission_scaling.csv, JSON to %s\n",
                json.path().c_str());
  } else {
    std::printf("\nFAIL: could not write %s\n", json.path().c_str());
    return 1;
  }

  if (!verdicts_agree) {
    std::printf("FAIL: incremental and from-scratch verdicts disagree.\n");
    return 1;
  }
  if (!bar_met) {
    std::printf("FAIL: incremental admission is not >= 5x faster than "
                "from-scratch at 64+ resident flows.\n");
    return 1;
  }
  std::printf("PASS: incremental admission >= 5x faster at 64+ resident "
              "flows, verdicts identical.\n");
  return 0;
}
