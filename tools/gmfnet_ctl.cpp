// gmfnet_ctl — operator CLI for a running gmfnetd.
//
//   gmfnet_ctl (--unix PATH | --tcp HOST:PORT) [--timeout MS] [--retries N]
//              <command> [args]
//
//   admit <scenario>    admit every flow of the scenario file (gated:
//                       AnalysisEngine::try_admit); exit 0 when all were
//                       admitted, 3 when any was rejected
//   what-if <scenario>  non-committing batch probe of the scenario's
//                       flows; exit 0 when all are admissible, 3 otherwise
//   remove <index>      drop the resident flow at <index> (as reported by
//                       stats/admit ids); exit 3 when out of range
//   stats               print engine counters + resident/shard counts
//   save <file>         write the daemon's converged state as a
//                       checkpoint file (warm-boot input for gmfnetd);
//                       written atomically (temp + fsync + rename)
//   restore <file>      replace the daemon's world with a checkpoint
//   shutdown            stop the daemon
//   promote             make the daemon the primary: bumps the epoch so a
//                       fenced ex-primary's stale deltas are rejected
//                       (see README "Replication & failover")
//   role                print the daemon's replication role, epoch,
//                       commit position and link health
//   sync                alias of role for watching a replica catch up
//   repoint <addr>      point a replica at a different primary
//                       ("unix:PATH" or "HOST:PORT")
//
//   --timeout MS        connect + per-request deadline (default 30000;
//                       0 = wait forever).  A daemon that is unreachable
//                       or stops answering fails fast instead of hanging
//                       the operator's shell.
//   --retries N         transparent retries for the idempotent commands
//                       (what-if, stats) after a transport failure
//                       (default 0).  Mutating commands are never
//                       retried: a mid-exchange failure leaves it unknown
//                       whether the daemon committed.
//
// Scenario files passed to admit/what-if must describe flows over the
// network the daemon was booted with (routes are resolved by node id).
// Exit codes: 0 ok, 1 daemon/local error, 2 usage, 3 rejected,
// 4 unreachable or deadline exceeded, 5 not the primary (the daemon is a
// replica or a fenced ex-primary; stderr names the primary when known).
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/atomic_file.hpp"
#include "io/scenario_io.hpp"
#include "rpc/client.hpp"

namespace {

using namespace gmfnet;

/// Strict decimal parse: pure digits, in [lo, hi] — `remove 3x` and a
/// port of `80abc` are errors, not silently truncated values.
bool parse_number(const std::string& s, long long lo, long long hi,
                  long long& out) {
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, out);
  return ec == std::errc() && ptr == end && !s.empty() && out >= lo &&
         out <= hi;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--unix PATH | --tcp HOST:PORT) [--timeout MS] "
               "[--retries N] <command> [args]\n"
               "commands: admit <scenario> | what-if <scenario> | "
               "remove <index> | stats | save <file> | restore <file> | "
               "shutdown | promote | role | sync | repoint <addr>\n",
               argv0);
  return 2;
}

std::vector<gmf::Flow> load_flows(const std::string& path) {
  workload::Scenario sc = io::load_scenario(path);
  if (sc.flows.empty()) {
    throw std::runtime_error(path + " contains no flows");
  }
  return std::move(sc.flows);
}

int cmd_admit(rpc::Client& client, const std::string& path) {
  std::size_t rejected = 0;
  for (const gmf::Flow& f : load_flows(path)) {
    const std::optional<core::HolisticResult> res = client.admit(f);
    if (res) {
      std::printf("admitted  %-20s (schedulable=%s)\n", f.name().c_str(),
                  res->schedulable ? "yes" : "no");
    } else {
      std::printf("rejected  %-20s\n", f.name().c_str());
      ++rejected;
    }
  }
  return rejected == 0 ? 0 : 3;
}

int cmd_what_if(rpc::Client& client, const std::string& path) {
  const std::vector<gmf::Flow> flows = load_flows(path);
  const std::vector<engine::WhatIfResult> results =
      client.what_if_batch(flows);
  std::size_t inadmissible = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    std::printf("%-12s  %-20s\n",
                results[i].admissible ? "admissible" : "inadmissible",
                flows[i].name().c_str());
    if (!results[i].admissible) ++inadmissible;
  }
  return inadmissible == 0 ? 0 : 3;
}

int cmd_stats(rpc::Client& client) {
  const rpc::StatsResponse s = client.stats();
  std::printf("resident_flows      %llu\n",
              static_cast<unsigned long long>(s.flows));
  std::printf("locality_domains    %llu\n",
              static_cast<unsigned long long>(s.shards));
  std::printf("evaluations         %zu\n", s.stats.evaluations);
  std::printf("full_runs           %zu\n", s.stats.full_runs);
  std::printf("incremental_runs    %zu\n", s.stats.incremental_runs);
  std::printf("flow_analyses       %zu\n", s.stats.flow_analyses);
  std::printf("flow_results_reused %zu\n", s.stats.flow_results_reused);
  std::printf("sweeps              %zu\n", s.stats.sweeps);
  std::printf("solver              %s\n",
              s.solver_mode ==
                      static_cast<std::uint8_t>(core::SolverMode::kAnderson)
                  ? "anderson"
                  : "plain");
  std::printf("accel_accepted      %zu\n", s.stats.accel_accepted);
  std::printf("accel_rejected      %zu\n", s.stats.accel_rejected);
  std::printf("role                %s\n",
              s.role == rpc::Role::kPrimary ? "primary" : "replica");
  std::printf("epoch               %llu\n",
              static_cast<unsigned long long>(s.epoch));
  std::printf("commit_seq          %llu\n",
              static_cast<unsigned long long>(s.commit_seq));
  std::printf("uptime_ms           %llu\n",
              static_cast<unsigned long long>(s.uptime_ms));
  std::printf("active_connections  %llu\n",
              static_cast<unsigned long long>(s.active_connections));
  std::printf("frames_served       %llu\n",
              static_cast<unsigned long long>(s.frames_served));
  std::printf("coalesced_commits   %llu\n",
              static_cast<unsigned long long>(s.coalesced_commits));
  std::printf("pipelined_hwm       %llu\n",
              static_cast<unsigned long long>(s.pipelined_hwm));
  return 0;
}

int print_role(const rpc::RoleResponse& r) {
  const bool primary = r.role == rpc::Role::kPrimary;
  std::printf("role                %s%s\n", primary ? "primary" : "replica",
              r.fenced ? " (FENCED)" : "");
  std::printf("epoch               %llu\n",
              static_cast<unsigned long long>(r.epoch));
  std::printf("commit_seq          %llu\n",
              static_cast<unsigned long long>(r.commit_seq));
  if (primary) {
    std::printf("subscribers         %llu\n",
                static_cast<unsigned long long>(r.subscribers));
    std::printf("journal             [%llu, %llu]\n",
                static_cast<unsigned long long>(r.journal_begin),
                static_cast<unsigned long long>(r.journal_end));
  } else {
    std::printf("primary             %s\n", r.primary_addr.c_str());
    std::printf("link                %s\n",
                r.connected ? "connected" : "down");
    std::printf("full_syncs          %llu\n",
                static_cast<unsigned long long>(r.full_syncs));
    std::printf("deltas_applied      %llu\n",
                static_cast<unsigned long long>(r.deltas_applied));
  }
  return 0;
}

int cmd_save(rpc::Client& client, const std::string& path) {
  const std::string blob = client.save_checkpoint();
  // Atomic replace: a crash (or full disk) mid-save must not clobber an
  // existing checkpoint with a truncated one.
  io::atomic_write_file(path, blob);
  std::printf("saved %zu bytes to %s\n", blob.size(), path.c_str());
  return 0;
}

int cmd_restore(rpc::Client& client, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "gmfnet_ctl: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::uint64_t flows = client.restore(std::move(ss).str());
  std::printf("restored %llu resident flows\n",
              static_cast<unsigned long long>(flows));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string ep_flag;
  std::string ep;
  long long timeout_ms = 30'000;
  long long retries = 0;

  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) break;  // first non-option = command
    const bool has_value = i + 1 < argc;
    if ((arg == "--unix" || arg == "--tcp") && has_value) {
      ep_flag = arg;
      ep = argv[++i];
    } else if (arg == "--timeout" && has_value) {
      if (!parse_number(argv[++i], 0, 86'400'000, timeout_ms)) {
        return usage(argv[0]);
      }
    } else if (arg == "--retries" && has_value) {
      if (!parse_number(argv[++i], 0, 1000, retries)) return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }
  if (ep_flag.empty() || i >= argc) return usage(argv[0]);
  const std::string command = argv[i];
  const bool has_arg = i + 1 < argc;
  const std::string cmd_arg = has_arg ? argv[i + 1] : "";
  if (i + 2 < argc) return usage(argv[0]);  // at most one command argument

  rpc::ClientConfig cfg;
  cfg.connect_timeout_ms =
      timeout_ms == 0 ? rpc::kNoTimeout : static_cast<int>(timeout_ms);
  cfg.request_timeout_ms = cfg.connect_timeout_ms;
  cfg.max_retries = static_cast<int>(retries);

  try {
    rpc::Client client = [&]() -> rpc::Client {
      try {
        if (ep_flag == "--unix") return rpc::Client::connect_unix(ep, cfg);
        const std::size_t colon = ep.rfind(':');
        if (colon == std::string::npos) {
          throw std::runtime_error("--tcp wants HOST:PORT, got " + ep);
        }
        long long port = 0;
        if (!parse_number(ep.substr(colon + 1), 1, 65535, port)) {
          throw std::runtime_error("bad port in " + ep);
        }
        return rpc::Client::connect_tcp(
            ep.substr(0, colon), static_cast<std::uint16_t>(port), cfg);
      } catch (const rpc::TransportError& e) {
        // Unreachable daemon: distinct exit code so scripts can tell
        // "daemon down" from "daemon said no".
        std::fprintf(stderr, "gmfnet_ctl: daemon unreachable: %s\n",
                     e.what());
        std::exit(4);
      }
    }();

    if (command == "admit" && has_arg) return cmd_admit(client, cmd_arg);
    if (command == "what-if" && has_arg) return cmd_what_if(client, cmd_arg);
    if (command == "remove" && has_arg) {
      long long index = 0;
      if (!parse_number(cmd_arg, 0, (1ll << 62), index)) {
        return usage(argv[0]);
      }
      const bool removed = client.remove(static_cast<std::uint64_t>(index));
      std::printf("%s\n", removed ? "removed" : "no such flow");
      return removed ? 0 : 3;
    }
    if (command == "stats" && !has_arg) return cmd_stats(client);
    if (command == "save" && has_arg) return cmd_save(client, cmd_arg);
    if (command == "restore" && has_arg) return cmd_restore(client, cmd_arg);
    if (command == "shutdown" && !has_arg) {
      client.shutdown();
      std::printf("daemon shutting down\n");
      return 0;
    }
    if (command == "promote" && !has_arg) {
      const std::uint64_t epoch = client.promote();
      std::printf("promoted to primary at epoch %llu\n",
                  static_cast<unsigned long long>(epoch));
      return 0;
    }
    if ((command == "role" || command == "sync") && !has_arg) {
      return print_role(client.role());
    }
    if (command == "repoint" && has_arg) {
      return print_role(client.repoint(cmd_arg));
    }
    return usage(argv[0]);
  } catch (const rpc::NotPrimaryError& e) {
    // Distinct exit code: scripts following a failover can redirect the
    // mutation to e.primary_addr() instead of treating it as a failure.
    std::fprintf(stderr, "gmfnet_ctl: %s\n", e.what());
    return 5;
  } catch (const rpc::TimeoutError& e) {
    std::fprintf(stderr, "gmfnet_ctl: deadline exceeded: %s\n", e.what());
    return 4;
  } catch (const rpc::TransportError& e) {
    std::fprintf(stderr, "gmfnet_ctl: transport failure: %s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gmfnet_ctl: %s\n", e.what());
    return 1;
  }
}
