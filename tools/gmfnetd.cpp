// gmfnetd — the gmfnet operator daemon.
//
// Owns one AnalysisEngine and serves the rpc/protocol message catalog
// (ADMIT / REMOVE / WHAT_IF_BATCH / STATS / SAVE_CHECKPOINT / RESTORE /
// SHUTDOWN) over a Unix-domain or loopback TCP socket until an operator
// sends SHUTDOWN (gmfnet_ctl shutdown).
//
//   gmfnetd (--unix PATH | --tcp PORT) (--scenario FILE | --restore FILE)
//           [--host ADDR] [--readers N]
//
//   --scenario FILE  boot from a gmfnet scenario file: the network plus
//                    its flows as the initial resident set (evaluated
//                    before serving, so the first probe hits a warm world)
//   --restore FILE   warm-boot from a PR 4 checkpoint (zero solver runs)
//   --readers N      what-if reader pool size (default: hardware threads)
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "engine/analysis_engine.hpp"
#include "io/scenario_io.hpp"
#include "rpc/server.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--unix PATH | --tcp PORT) "
               "(--scenario FILE | --restore FILE) [--host ADDR] "
               "[--readers N]\n",
               argv0);
  return 2;
}

/// Strict decimal parse: pure digits, in [lo, hi] — `--tcp 80abc` and
/// `--readers -1` are usage errors, not silently truncated/wrapped values.
bool parse_number(const std::string& s, long long lo, long long hi,
                  long long& out) {
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, out);
  return ec == std::errc() && ptr == end && !s.empty() && out >= lo &&
         out <= hi;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmfnet;

  std::string unix_path;
  std::string host = "127.0.0.1";
  long long tcp_port = -1;
  std::string scenario_path;
  std::string restore_path;
  long long readers = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--unix" && has_value) {
      unix_path = argv[++i];
    } else if (arg == "--tcp" && has_value) {
      if (!parse_number(argv[++i], 0, 65535, tcp_port)) return usage(argv[0]);
    } else if (arg == "--host" && has_value) {
      host = argv[++i];
    } else if (arg == "--scenario" && has_value) {
      scenario_path = argv[++i];
    } else if (arg == "--restore" && has_value) {
      restore_path = argv[++i];
    } else if (arg == "--readers" && has_value) {
      if (!parse_number(argv[++i], 0, 4096, readers)) return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }
  if ((unix_path.empty() && tcp_port < 0) ||
      (!unix_path.empty() && tcp_port >= 0) ||
      (scenario_path.empty() == restore_path.empty())) {
    return usage(argv[0]);
  }

  try {
    std::shared_ptr<engine::AnalysisEngine> eng;
    if (!scenario_path.empty()) {
      workload::Scenario sc = io::load_scenario(scenario_path);
      eng = std::make_shared<engine::AnalysisEngine>(std::move(sc.network));
      for (gmf::Flow& f : sc.flows) eng->add_flow(std::move(f));
      (void)eng->evaluate();
      std::printf("gmfnetd: booted %zu resident flows in %zu domains from %s\n",
                  eng->flow_count(), eng->shard_count(),
                  scenario_path.c_str());
    } else {
      std::ifstream in(restore_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "gmfnetd: cannot read %s\n",
                     restore_path.c_str());
        return 1;
      }
      eng = engine::AnalysisEngine::restore_unique(in);
      std::printf(
          "gmfnetd: warm-booted %zu resident flows in %zu domains from %s "
          "(no solver runs)\n",
          eng->flow_count(), eng->shard_count(), restore_path.c_str());
    }

    rpc::ServerConfig cfg;
    cfg.unix_path = unix_path;
    cfg.tcp_host = host;
    cfg.tcp_port = static_cast<std::uint16_t>(tcp_port < 0 ? 0 : tcp_port);
    cfg.reader_threads = static_cast<std::size_t>(readers);
    rpc::Server server(std::move(eng), std::move(cfg));
    if (!unix_path.empty()) {
      std::printf("gmfnetd: serving on unix:%s\n", unix_path.c_str());
    } else {
      std::printf("gmfnetd: serving on tcp:%s:%u\n", host.c_str(),
                  static_cast<unsigned>(server.tcp_port()));
    }
    std::fflush(stdout);
    server.serve();
    std::printf("gmfnetd: shutdown complete\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gmfnetd: %s\n", e.what());
    return 1;
  }
}
