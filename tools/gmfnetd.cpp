// gmfnetd — the gmfnet operator daemon.
//
// Owns one AnalysisEngine and serves the rpc/protocol message catalog
// (ADMIT / REMOVE / WHAT_IF_BATCH / STATS / SAVE_CHECKPOINT / RESTORE /
// SHUTDOWN) over a Unix-domain or loopback TCP socket until an operator
// sends SHUTDOWN (gmfnet_ctl shutdown) or the process receives
// SIGTERM/SIGINT — which drains gracefully: stop accepting, finish
// in-flight requests up to the drain deadline, write a final crash-safe
// checkpoint, exit 0.
//
//   gmfnetd (--unix PATH | --tcp PORT) (--scenario FILE | --restore FILE)
//           [--host ADDR] [--readers N] [--solver SPEC]
//           [--checkpoint-path P] [--checkpoint-every N]
//           [--io-timeout MS] [--idle-timeout MS] [--max-conns N]
//           [--drain-timeout MS]
//           [--replica-of ADDR] [--journal-cap N]
//
// Replication: with --replica-of the daemon boots as a replica of the
// primary at ADDR ("unix:PATH" or "HOST:PORT").  A replica needs no
// --scenario/--restore — it cold-boots empty and bootstraps from the
// primary's full-sync checkpoint, then follows the delta stream.  It
// serves WHAT_IF_BATCH/STATS from its own snapshots and answers
// mutations with NOT_PRIMARY until `gmfnet_ctl promote` makes it the
// primary (epoch-fenced — see README "Replication & failover").
//
// Exit status: 0 clean shutdown/drain, 1 runtime error, 2 usage,
// 3 abnormal stop (the accept loop died persistently — the daemon was
// NOT shut down by an operator; supervisors should treat this as a
// crash and restart/alert).
//
//   --scenario FILE       boot from a gmfnet scenario file: the network
//                         plus its flows as the initial resident set
//                         (evaluated before serving, so the first probe
//                         hits a warm world)
//   --restore FILE        warm-boot from a checkpoint (zero solver runs);
//                         when FILE is truncated/corrupt/missing, falls
//                         back to FILE.prev — the rotation slot the
//                         atomic checkpoint writer maintains — so a crash
//                         mid-save never strands the daemon
//   --readers N           what-if reader pool size (default: hardware)
//   --solver SPEC         fixed-point iteration strategy: "plain" (default)
//                         or "anderson"/"anderson:M" (safeguarded
//                         Anderson(M) acceleration, M in [1,8]; identical
//                         verdicts, fewer sweeps near saturation).  A
//                         --restore checkpoint must have been saved under
//                         the same solver mode (fingerprinted)
//   --checkpoint-path P   write crash-safe checkpoints to P (final one on
//                         drain/shutdown; P.prev keeps the previous
//                         generation)
//   --checkpoint-every N  also auto-checkpoint after every N committed
//                         mutations (requires --checkpoint-path)
//   --io-timeout MS       per-connection send/recv deadline; a peer
//                         stalled mid-frame is disconnected (default
//                         30000; 0 = never)
//   --idle-timeout MS     close connections idle between requests this
//                         long (default 120000; 0 = never)
//   --max-conns N         connection cap; at the cap the oldest-idle
//                         connection is shed (default 1024; 0 = unlimited)
//   --drain-timeout MS    how long SIGTERM waits for in-flight requests
//                         (default 5000)
//   --replica-of ADDR     boot as a replica following the primary at ADDR
//                         ("unix:PATH" or "HOST:PORT")
//   --journal-cap N       delta frames the primary retains for replica
//                         catch-up; a replica further behind than N takes
//                         a full resync instead (default 1024)
#include <atomic>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "engine/analysis_engine.hpp"
#include "io/atomic_file.hpp"
#include "io/scenario_io.hpp"
#include "rpc/server.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

extern "C" void on_signal(int sig) { g_signal = sig; }

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--unix PATH | --tcp PORT) (--scenario FILE | --restore "
      "FILE)\n"
      "          [--host ADDR] [--readers N] [--solver SPEC]\n"
      "          [--checkpoint-path P] [--checkpoint-every N]\n"
      "          [--io-timeout MS] [--idle-timeout MS] [--max-conns N]\n"
      "          [--drain-timeout MS]\n"
      "          [--replica-of ADDR] [--journal-cap N]\n"
      "(a replica may omit --scenario/--restore: it bootstraps from its "
      "primary)\n",
      argv0);
  return 2;
}

/// Strict decimal parse: pure digits, in [lo, hi] — `--tcp 80abc` and
/// `--readers -1` are usage errors, not silently truncated/wrapped values.
bool parse_number(const std::string& s, long long lo, long long hi,
                  long long& out) {
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, out);
  return ec == std::errc() && ptr == end && !s.empty() && out >= lo &&
         out <= hi;
}

/// Warm boot with recovery: try the checkpoint at `path`, fall back to the
/// rotation slot `path.prev` when the newest generation is truncated,
/// corrupt, or missing (e.g. the process died between the atomic writer's
/// two renames).  Returns nullptr when no valid checkpoint exists.
std::shared_ptr<gmfnet::engine::AnalysisEngine> restore_with_fallback(
    const std::string& path, const gmfnet::core::HolisticOptions& opts) {
  namespace io = gmfnet::io;
  const std::string candidates[] = {path,
                                    io::AtomicFileWriter::previous_path(path)};
  for (const std::string& p : candidates) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "gmfnetd: cannot read checkpoint %s\n", p.c_str());
      continue;
    }
    try {
      auto eng = std::shared_ptr<gmfnet::engine::AnalysisEngine>(
          gmfnet::engine::AnalysisEngine::restore_unique(in, opts));
      std::printf(
          "gmfnetd: warm-booted %zu resident flows in %zu domains from %s "
          "(no solver runs)\n",
          eng->flow_count(), eng->shard_count(), p.c_str());
      return eng;
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "gmfnetd: checkpoint %s is not restorable (%s)%s\n",
                   p.c_str(), e.what(),
                   p == path ? ", trying previous generation" : "");
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmfnet;

  std::string unix_path;
  std::string host = "127.0.0.1";
  long long tcp_port = -1;
  std::string scenario_path;
  std::string restore_path;
  std::string checkpoint_path;
  long long readers = 0;
  long long checkpoint_every = 0;
  long long io_timeout = 30'000;
  long long idle_timeout = 120'000;
  long long max_conns = 1024;
  long long drain_timeout = 5'000;
  std::string replica_of;
  long long journal_cap = 1024;
  core::HolisticOptions engine_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--unix" && has_value) {
      unix_path = argv[++i];
    } else if (arg == "--tcp" && has_value) {
      if (!parse_number(argv[++i], 0, 65535, tcp_port)) return usage(argv[0]);
    } else if (arg == "--host" && has_value) {
      host = argv[++i];
    } else if (arg == "--scenario" && has_value) {
      scenario_path = argv[++i];
    } else if (arg == "--restore" && has_value) {
      restore_path = argv[++i];
    } else if (arg == "--readers" && has_value) {
      if (!parse_number(argv[++i], 0, 4096, readers)) return usage(argv[0]);
    } else if (arg == "--solver" && has_value) {
      if (!core::parse_solver_spec(argv[++i], engine_opts.solver)) {
        std::fprintf(stderr,
                     "gmfnetd: bad --solver spec '%s' (want plain | anderson "
                     "| anderson:M with M in [1,8])\n",
                     argv[i]);
        return usage(argv[0]);
      }
    } else if (arg == "--checkpoint-path" && has_value) {
      checkpoint_path = argv[++i];
    } else if (arg == "--checkpoint-every" && has_value) {
      if (!parse_number(argv[++i], 0, 1'000'000'000, checkpoint_every)) {
        return usage(argv[0]);
      }
    } else if (arg == "--io-timeout" && has_value) {
      if (!parse_number(argv[++i], 0, 86'400'000, io_timeout)) {
        return usage(argv[0]);
      }
    } else if (arg == "--idle-timeout" && has_value) {
      if (!parse_number(argv[++i], 0, 86'400'000, idle_timeout)) {
        return usage(argv[0]);
      }
    } else if (arg == "--max-conns" && has_value) {
      if (!parse_number(argv[++i], 0, 1'000'000, max_conns)) {
        return usage(argv[0]);
      }
    } else if (arg == "--drain-timeout" && has_value) {
      if (!parse_number(argv[++i], 0, 86'400'000, drain_timeout)) {
        return usage(argv[0]);
      }
    } else if (arg == "--replica-of" && has_value) {
      replica_of = argv[++i];
    } else if (arg == "--journal-cap" && has_value) {
      if (!parse_number(argv[++i], 1, 1'000'000'000, journal_cap)) {
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }
  // A primary needs exactly one boot source; a replica bootstraps from
  // its primary, so at most one (a warm --restore shortens the first
  // sync, a --scenario is allowed but will be replaced by the sync).
  const bool replica = !replica_of.empty();
  if ((unix_path.empty() && tcp_port < 0) ||
      (!unix_path.empty() && tcp_port >= 0) ||
      (!replica && scenario_path.empty() == restore_path.empty()) ||
      (replica && !scenario_path.empty() && !restore_path.empty()) ||
      (checkpoint_every > 0 && checkpoint_path.empty())) {
    return usage(argv[0]);
  }

  try {
    std::shared_ptr<engine::AnalysisEngine> eng;
    if (!scenario_path.empty()) {
      workload::Scenario sc = io::load_scenario(scenario_path);
      eng = std::make_shared<engine::AnalysisEngine>(std::move(sc.network),
                                                     engine_opts);
      for (gmf::Flow& f : sc.flows) eng->add_flow(std::move(f));
      (void)eng->evaluate();
      std::printf("gmfnetd: booted %zu resident flows in %zu domains from %s\n",
                  eng->flow_count(), eng->shard_count(),
                  scenario_path.c_str());
    } else if (!restore_path.empty()) {
      eng = restore_with_fallback(restore_path, engine_opts);
      if (!eng) {
        std::fprintf(stderr, "gmfnetd: no restorable checkpoint at %s\n",
                     restore_path.c_str());
        return 1;
      }
    } else {
      // Replica cold boot: an empty engine that the first SYNC_FULL from
      // the primary will replace wholesale.
      eng = std::make_shared<engine::AnalysisEngine>(net::Network{},
                                                     engine_opts);
      std::printf("gmfnetd: cold replica boot — awaiting full sync from %s\n",
                  replica_of.c_str());
    }

    rpc::ServerConfig cfg;
    cfg.unix_path = unix_path;
    cfg.tcp_host = host;
    cfg.tcp_port = static_cast<std::uint16_t>(tcp_port < 0 ? 0 : tcp_port);
    cfg.reader_threads = static_cast<std::size_t>(readers);
    cfg.io_timeout_ms =
        io_timeout == 0 ? rpc::kNoTimeout : static_cast<int>(io_timeout);
    cfg.idle_timeout_ms =
        idle_timeout == 0 ? rpc::kNoTimeout : static_cast<int>(idle_timeout);
    cfg.max_connections = static_cast<std::size_t>(max_conns);
    cfg.drain_timeout_ms = static_cast<int>(drain_timeout);
    cfg.checkpoint_path = checkpoint_path;
    cfg.checkpoint_every = static_cast<std::size_t>(checkpoint_every);
    cfg.replica_of = replica_of;
    cfg.journal_capacity = static_cast<std::size_t>(journal_cap);
    cfg.engine_opts = engine_opts;
    rpc::Server server(std::move(eng), std::move(cfg));
    if (replica) {
      std::printf("gmfnetd: replica of %s (epoch %llu)\n", replica_of.c_str(),
                  static_cast<unsigned long long>(server.epoch()));
    }
    if (!unix_path.empty()) {
      std::printf("gmfnetd: serving on unix:%s\n", unix_path.c_str());
    } else {
      std::printf("gmfnetd: serving on tcp:%s:%u\n", host.c_str(),
                  static_cast<unsigned>(server.tcp_port()));
    }
    std::fflush(stdout);

    // SIGTERM/SIGINT request a graceful drain; the handler only sets a
    // flag (async-signal-safe), the watcher thread relays it to the
    // server off the signal context.
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::atomic<bool> watcher_stop{false};
    std::thread watcher([&server, &watcher_stop] {
      while (!watcher_stop.load(std::memory_order_acquire)) {
        if (g_signal != 0) {
          std::printf("gmfnetd: signal %d — draining\n",
                      static_cast<int>(g_signal));
          std::fflush(stdout);
          server.request_drain();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });

    server.serve();
    watcher_stop.store(true, std::memory_order_release);
    watcher.join();

    if (server.abnormal_stop()) {
      std::fprintf(stderr,
                   "gmfnetd: abnormal stop — the accept loop died "
                   "persistently; see the error log above\n");
      return 3;
    }
    if (!checkpoint_path.empty()) {
      std::printf("gmfnetd: final checkpoint at %s\n",
                  checkpoint_path.c_str());
    }
    std::printf("gmfnetd: %s complete\n",
                server.drain_requested() ? "drain" : "shutdown");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gmfnetd: %s\n", e.what());
    return 1;
  }
}
